//! The checked-in performance baseline: S²C² vs conventional MDS vs
//! uncoded on the default 12-worker controlled simulation, plus the
//! multi-job `serve` scenario's summary row.
//!
//! `cargo run --release -p s2c2-bench --bin figures -- baseline` runs this
//! and rewrites `BENCH_BASELINE.json` at the repository root. The file is
//! committed so future PRs can diff scheduler-level latency *and*
//! service-level tail/throughput regressions without re-deriving the
//! reference numbers.

use crate::experiments::{batch as batch_exp, common, e2e as e2e_exp, serve as serve_exp};
use s2c2_coding::mds::MdsParams;
use s2c2_core::job::CodedJobBuilder;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_linalg::{Matrix, Vector};
use s2c2_serve::percentile;

/// One-line description for the `figures` CLI listing.
pub const SUMMARY: &str = "rewrites the committed BENCH_BASELINE.json reference";

/// One scheme's measurements.
#[derive(Debug, Clone)]
pub struct SchemeBaseline {
    /// Scheme label (stable key for cross-PR diffs).
    pub name: String,
    /// Sum of per-iteration simulated latencies.
    pub total_latency: f64,
    /// Mean per-iteration simulated latency.
    pub mean_latency: f64,
    /// Median per-iteration simulated latency.
    pub p50_latency: f64,
    /// 99th-percentile per-iteration simulated latency (nearest rank).
    pub p99_latency: f64,
    /// Total rows computed but discarded across the job.
    pub wasted_rows: usize,
}

/// One service-scenario policy's summary row.
#[derive(Debug, Clone)]
pub struct ServeBaseline {
    /// Scheduling mode label.
    pub name: String,
    /// Median job sojourn latency.
    pub p50_latency: f64,
    /// 99th-percentile job sojourn latency.
    pub p99_latency: f64,
    /// Completed jobs per second of makespan.
    pub throughput: f64,
    /// Pool utilization (must be within `[0, 1]`).
    pub utilization: f64,
}

/// One tenant's QoS summary row from the s2c2 serve scenario.
#[derive(Debug, Clone)]
pub struct TenantBaseline {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs the tenant submitted.
    pub jobs: usize,
    /// Median sojourn latency over its completed jobs.
    pub p50_latency: f64,
    /// 99th-percentile sojourn latency over its completed jobs.
    pub p99_latency: f64,
    /// Weight-mass share it was entitled to.
    pub entitled_share: f64,
    /// Work share it achieved while tenants contended.
    pub achieved_share: f64,
    /// Fraction of its deadline-carrying jobs served on time.
    pub on_time_ratio: f64,
}

/// One execution-backend row from the e2e scenario.
#[derive(Debug, Clone)]
pub struct E2eBaseline {
    /// Backend label (`sim` / `sim-verified` / `threaded`).
    pub name: String,
    /// Median job sojourn latency (virtual time — backend-independent).
    pub p50_latency: f64,
    /// 99th-percentile job sojourn latency.
    pub p99_latency: f64,
    /// Jobs completed.
    pub completed: usize,
    /// Iterations decoded and checked against the sequential reference.
    pub verified_iterations: usize,
    /// Encode-cache hits across the recurring-matrix trace.
    pub cache_hits: u64,
    /// Encode-cache misses (distinct encodings built).
    pub cache_misses: u64,
}

/// One batching-policy row from the high-λ small-job scenario.
#[derive(Debug, Clone)]
pub struct BatchBaseline {
    /// Policy label (`unbatched` / `batch-size` / `batch-window`).
    pub name: String,
    /// Median job sojourn latency.
    pub p50_latency: f64,
    /// 99th-percentile job sojourn latency.
    pub p99_latency: f64,
    /// Completed jobs per second of makespan.
    pub throughput: f64,
    /// Multi-RHS rounds started (0 for the unbatched engine).
    pub batch_rounds: usize,
    /// Mean member count of the coalesced batches (0 when unbatched).
    pub mean_batch: f64,
}

/// The full baseline record.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Workers in the simulated cluster.
    pub workers: usize,
    /// Injected 5×-slow stragglers.
    pub stragglers: usize,
    /// Problem shape (rows × cols) of the iterated matvec.
    pub rows: usize,
    /// Problem shape (rows × cols) of the iterated matvec.
    pub cols: usize,
    /// Iterations measured (after one warmup).
    pub iterations: usize,
    /// Per-scheme results.
    pub schemes: Vec<SchemeBaseline>,
    /// Jobs in the serve scenario.
    pub serve_jobs: usize,
    /// Pool size of the serve scenario.
    pub serve_workers: usize,
    /// Multi-job service scenario summary (16-worker shared pool).
    pub serve: Vec<ServeBaseline>,
    /// Per-tenant QoS rows from the s2c2 serve scenario.
    pub serve_tenants: Vec<TenantBaseline>,
    /// Jobs in the e2e backend scenario.
    pub e2e_jobs: usize,
    /// Execution-backend rows from the e2e recurring-matrix trace.
    pub e2e: Vec<E2eBaseline>,
    /// Jobs in the batching scenario.
    pub batch_jobs: usize,
    /// Batching-policy rows from the high-λ small-job stream.
    pub batch: Vec<BatchBaseline>,
}

/// Runs the baseline job: a 1200×60 iterated coded matvec on 12 workers,
/// 2 of them 5× slow, (12,9) MDS where coding applies — plus a 40-job
/// Poisson service scenario on a 16-worker pool with 3 stragglers.
///
/// # Panics
///
/// Panics if any scheme fails to run — the baseline must be computable on
/// every commit.
#[must_use]
pub fn run() -> Baseline {
    let (workers, stragglers) = (12usize, 2usize);
    let (rows, cols) = (1200usize, 60usize);
    let iterations = 8usize;
    let a = Matrix::from_fn(rows, cols, |r, c| (((r * 31 + c * 17) % 13) as f64) * 0.25);
    let x = Vector::from_fn(cols, |i| 1.0 + 0.01 * i as f64);

    let schemes: Vec<(&str, MdsParams, StrategyKind)> = vec![
        (
            "uncoded",
            MdsParams::new(workers, workers),
            StrategyKind::Uncoded,
        ),
        (
            "mds(12,9)",
            MdsParams::new(workers, 9),
            StrategyKind::MdsCoded,
        ),
        (
            "s2c2(12,9)",
            MdsParams::new(workers, 9),
            StrategyKind::S2c2General,
        ),
    ];

    let mut out = Vec::with_capacity(schemes.len());
    for (name, params, kind) in schemes {
        let cluster = common::controlled_cluster(workers, stragglers, 0xBA5E);
        let mut job = CodedJobBuilder::new(a.clone(), params)
            .chunks_per_worker(12)
            .strategy(kind)
            .predictor(PredictorSource::LastValue)
            .build(cluster)
            .expect("baseline configuration is valid");
        // One warmup iteration so prediction-driven schemes have observed
        // speeds before the measured window.
        let warm = job.run_iteration(&x).expect("warmup iteration succeeds");
        let expect = a.matvec(&x);
        s2c2_linalg::assert_slices_close(
            warm.result.as_slice(),
            expect.as_slice(),
            s2c2_linalg::ROUND_TRIP_TOL,
        );
        let skip = job.metrics().len();
        for _ in 0..iterations {
            job.run_iteration(&x).expect("baseline iteration succeeds");
        }
        let rounds = &job.metrics().rounds()[skip..];
        let total: f64 = rounds.iter().map(|r| r.latency).sum();
        let mut sorted: Vec<f64> = rounds.iter().map(|r| r.latency).collect();
        sorted.sort_by(f64::total_cmp);
        let wasted: usize = rounds
            .iter()
            .map(|r| r.wasted_rows().iter().sum::<usize>())
            .sum();
        out.push(SchemeBaseline {
            name: name.to_string(),
            total_latency: total,
            mean_latency: total / iterations as f64,
            p50_latency: percentile(&sorted, 50.0),
            p99_latency: percentile(&sorted, 99.0),
            wasted_rows: wasted,
        });
    }

    // The serve rows reuse the canonical serve-experiment scenario
    // (same pool, stragglers, seed, and runner) so the committed
    // reference guards exactly what `figures -- serve` measures.
    let serve_jobs = 40usize;
    let mut serve = Vec::with_capacity(3);
    let mut serve_tenants = Vec::new();
    for name in ["uncoded", "mds", "s2c2"] {
        let report = serve_exp::run_service(serve_exp::mode(name), 1.0, serve_jobs, 1);
        assert_eq!(
            report.completed(),
            serve_jobs,
            "{name} serve baseline must complete every job"
        );
        let utilization = report.utilization();
        assert!(
            (0.0..=1.0).contains(&utilization),
            "{name} utilization {utilization} out of [0, 1]"
        );
        serve.push(ServeBaseline {
            name: name.to_string(),
            p50_latency: report.latency_percentile(50.0),
            p99_latency: report.latency_percentile(99.0),
            throughput: report.throughput(),
            utilization,
        });
        if name == "s2c2" {
            serve_tenants = report
                .tenant_summaries()
                .into_iter()
                .map(|t| TenantBaseline {
                    tenant: t.tenant,
                    jobs: t.jobs,
                    p50_latency: t.p50_latency,
                    p99_latency: t.p99_latency,
                    entitled_share: t.entitled_share,
                    achieved_share: t.achieved_share,
                    on_time_ratio: t.on_time_ratio,
                })
                .collect();
        }
    }

    // The e2e rows reuse the canonical backend-comparison scenario, so
    // the committed reference also guards the numeric path: cache
    // amortization and verified-iteration counts per backend.
    let e2e_jobs = 10usize;
    let e2e = [
        s2c2_serve::BackendKind::Sim,
        s2c2_serve::BackendKind::SimVerified,
        s2c2_serve::BackendKind::Threaded,
    ]
    .into_iter()
    .map(|backend| {
        let r = e2e_exp::run_backend(backend, e2e_jobs);
        assert_eq!(
            r.completed(),
            e2e_jobs,
            "{backend} e2e baseline must complete every job"
        );
        E2eBaseline {
            name: backend.to_string(),
            p50_latency: r.latency_percentile(50.0),
            p99_latency: r.latency_percentile(99.0),
            completed: r.completed(),
            verified_iterations: r.verified_iterations,
            cache_hits: r.encode_cache_hits,
            cache_misses: r.encode_cache_misses,
        }
    })
    .collect();

    // The batch rows reuse the canonical batching scenario, so the
    // committed reference also guards the amortization win: batched
    // rounds must keep beating the unbatched engine on throughput and
    // p99 at high arrival rate.
    let batch_jobs = 120usize;
    let batch = batch_exp::policies()
        .into_iter()
        .map(|(label, policy)| {
            let r = batch_exp::run_policy(policy, batch_jobs);
            assert_eq!(
                r.completed(),
                batch_jobs,
                "{label} batch baseline must complete every job"
            );
            BatchBaseline {
                name: label.to_string(),
                p50_latency: r.latency_percentile(50.0),
                p99_latency: r.latency_percentile(99.0),
                throughput: r.throughput(),
                batch_rounds: r.batch_rounds,
                mean_batch: r.mean_batch_size(),
            }
        })
        .collect();

    Baseline {
        workers,
        stragglers,
        rows,
        cols,
        iterations,
        schemes: out,
        serve_jobs,
        serve_workers: serve_exp::POOL,
        serve,
        serve_tenants,
        e2e_jobs,
        e2e,
        batch_jobs,
        batch,
    }
}

impl Baseline {
    /// Serializes as pretty-printed JSON (hand-rolled; the workspace has
    /// no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"stragglers\": {},\n", self.stragglers));
        s.push_str(&format!("  \"rows\": {},\n", self.rows));
        s.push_str(&format!("  \"cols\": {},\n", self.cols));
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        s.push_str("  \"schemes\": [\n");
        for (i, sch) in self.schemes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"total_latency\": {:.6}, \"mean_latency\": {:.6}, \"p50_latency\": {:.6}, \"p99_latency\": {:.6}, \"wasted_rows\": {}}}{}\n",
                sch.name,
                sch.total_latency,
                sch.mean_latency,
                sch.p50_latency,
                sch.p99_latency,
                sch.wasted_rows,
                if i + 1 < self.schemes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"serve_workers\": {},\n", self.serve_workers));
        s.push_str(&format!("  \"serve_jobs\": {},\n", self.serve_jobs));
        s.push_str("  \"serve\": [\n");
        for (i, row) in self.serve.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"p50_latency\": {:.6}, \"p99_latency\": {:.6}, \"throughput\": {:.6}, \"utilization\": {:.6}}}{}\n",
                row.name,
                row.p50_latency,
                row.p99_latency,
                row.throughput,
                row.utilization,
                if i + 1 < self.serve.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"serve_tenants\": [\n");
        for (i, row) in self.serve_tenants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"tenant\": {}, \"jobs\": {}, \"p50_latency\": {:.6}, \"p99_latency\": {:.6}, \"entitled_share\": {:.6}, \"achieved_share\": {:.6}, \"on_time_ratio\": {:.6}}}{}\n",
                row.tenant,
                row.jobs,
                row.p50_latency,
                row.p99_latency,
                row.entitled_share,
                row.achieved_share,
                row.on_time_ratio,
                if i + 1 < self.serve_tenants.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"e2e_jobs\": {},\n", self.e2e_jobs));
        s.push_str("  \"e2e\": [\n");
        for (i, row) in self.e2e.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"p50_latency\": {:.6}, \"p99_latency\": {:.6}, \"completed\": {}, \"verified_iterations\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
                row.name,
                row.p50_latency,
                row.p99_latency,
                row.completed,
                row.verified_iterations,
                row.cache_hits,
                row.cache_misses,
                if i + 1 < self.e2e.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"batch_jobs\": {},\n", self.batch_jobs));
        s.push_str("  \"batch\": [\n");
        for (i, row) in self.batch.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"p50_latency\": {:.6}, \"p99_latency\": {:.6}, \"throughput\": {:.6}, \"batch_rounds\": {}, \"mean_batch\": {:.6}}}{}\n",
                row.name,
                row.p50_latency,
                row.p99_latency,
                row.throughput,
                row.batch_rounds,
                row.mean_batch,
                if i + 1 < self.batch.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2c2_beats_conventional_mds_under_stragglers() {
        let b = run();
        let get = |name: &str| {
            b.schemes
                .iter()
                .find(|s| s.name.starts_with(name))
                .expect("scheme present")
                .mean_latency
        };
        let uncoded = get("uncoded");
        let mds = get("mds");
        let s2c2 = get("s2c2");
        // Uncoded waits for the 5×-slow stragglers every iteration.
        assert!(
            uncoded > mds,
            "uncoded {uncoded} should trail mds {mds} with stragglers"
        );
        // S²C² squeezes the (12,9) slack instead of always paying it.
        assert!(
            s2c2 < mds * 1.02,
            "s2c2 {s2c2} should not trail conventional mds {mds}"
        );
    }

    #[test]
    fn tail_fields_are_ordered() {
        let b = run();
        for sch in &b.schemes {
            assert!(
                sch.p50_latency <= sch.p99_latency,
                "{}: p50 {} above p99 {}",
                sch.name,
                sch.p50_latency,
                sch.p99_latency
            );
            assert!(sch.p50_latency > 0.0);
        }
    }

    #[test]
    fn serve_summary_shows_the_tail_and_batch_wins() {
        // One baseline run guards both service-level headlines (the
        // batching scenario's own correctness/superiority tests live in
        // experiments::batch; this only pins the recorded rows).
        let b = run();
        let get = |name: &str| {
            b.serve
                .iter()
                .find(|s| s.name == name)
                .expect("serve row present")
        };
        assert!(
            get("s2c2").p99_latency < get("mds").p99_latency,
            "serve s2c2 p99 {} must beat mds {}",
            get("s2c2").p99_latency,
            get("mds").p99_latency
        );
        assert!(get("s2c2").throughput > 0.0);
        assert_eq!(b.batch.len(), 3);
        let batch = |name: &str| b.batch.iter().find(|r| r.name == name).expect("batch row");
        let off = batch("unbatched");
        assert_eq!(off.batch_rounds, 0);
        for name in ["batch-size", "batch-window"] {
            let row = batch(name);
            assert!(
                row.throughput > off.throughput && row.p99_latency < off.p99_latency,
                "{name} must beat unbatched on throughput and p99"
            );
            assert!(row.batch_rounds > 0 && row.mean_batch > 1.0);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let b = run();
        let j = b.to_json();
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert_eq!(j.matches("\"name\"").count(), 12);
        // 3 schemes + 3 serve rows + 3 e2e rows + 3 batch rows + one
        // per tenant.
        assert_eq!(
            j.matches("\"p99_latency\"").count(),
            12 + b.serve_tenants.len()
        );
        assert!(j.contains("\"serve\""));
        assert!(j.contains("\"serve_tenants\""));
        assert!(j.contains("\"utilization\""));
        assert!(j.contains("\"e2e\""));
        assert!(j.contains("\"cache_hits\""));
        assert!(j.contains("\"batch\""));
        assert!(j.contains("\"mean_batch\""));
    }

    #[test]
    fn e2e_rows_guard_the_numeric_path() {
        let b = run();
        assert_eq!(b.e2e.len(), 3);
        let get = |name: &str| b.e2e.iter().find(|r| r.name == name).expect("e2e row");
        // Virtual latencies are backend-independent.
        assert_eq!(get("sim").p50_latency, get("threaded").p50_latency);
        assert_eq!(get("sim-verified").p99_latency, get("threaded").p99_latency);
        // Numeric backends verify every iteration and amortize encodes.
        assert_eq!(get("sim").verified_iterations, 0);
        assert!(get("threaded").verified_iterations > 0);
        assert!(get("threaded").cache_hits > 0, "recurring trace must hit");
        assert_eq!(get("threaded").cache_misses, 3, "one encode per preset");
    }

    #[test]
    fn serve_utilization_within_bounds_and_tenants_present() {
        let b = run();
        for row in &b.serve {
            assert!(
                (0.0..=1.0).contains(&row.utilization),
                "{}: utilization {}",
                row.name,
                row.utilization
            );
        }
        // The serve scenario spreads jobs over 4 tenants.
        assert_eq!(b.serve_tenants.len(), 4);
        let share_sum: f64 = b.serve_tenants.iter().map(|t| t.achieved_share).sum();
        assert!(share_sum <= 1.0 + 1e-9);
        for t in &b.serve_tenants {
            assert_eq!(t.on_time_ratio, 1.0, "no SLOs in the serve scenario");
        }
    }
}
