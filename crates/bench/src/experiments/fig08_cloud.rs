//! Figures 8–11 — the cloud deployment experiments (SVM, 10 workers).
//!
//! * Fig 8: execution time under *low* mis-prediction (calm traces) for
//!   over-decomposition, MDS(8/9/10,7), S²C²(8/9/10,7) — normalized to
//!   S²C²(10,7). Expected: S²C²(10,7) ≈ over-dec ≈ 1.0; all MDS ≈ 10/7;
//!   S²C²(8,7) ≈ 1.23; S²C²(9,7) ≈ 1.09.
//! * Fig 9: per-worker wasted computation for (10,7) MDS vs S²C² in that
//!   environment (S²C² ≈ 0 everywhere).
//! * Fig 10/11: the same two tables under *high* mis-prediction
//!   (volatile traces) — ordering preserved, gaps shrink, S²C² now wastes
//!   some work but far less than MDS.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_cluster::JobMetrics;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_trace::CloudTraceConfig;
use s2c2_workloads::datasets::{gisette_like, Classification};
use s2c2_workloads::svm::DistributedSvm;

/// All four tables of the cloud experiment family.
#[derive(Debug, Clone)]
pub struct CloudFigures {
    /// Fig 8 — normalized execution time, low mis-prediction.
    pub fig8: Table,
    /// Fig 9 — wasted computation per worker, low mis-prediction.
    pub fig9: Table,
    /// Fig 10 — normalized execution time, high mis-prediction.
    pub fig10: Table,
    /// Fig 11 — wasted computation per worker, high mis-prediction.
    pub fig11: Table,
}

struct SchemeResult {
    label: String,
    latency: f64,
    forward_metrics: JobMetrics,
}

#[allow(clippy::too_many_arguments)]
fn run_scheme(
    data: &Classification,
    label: &str,
    params: MdsParams,
    kind: StrategyKind,
    predictor: PredictorSource,
    preset: &CloudTraceConfig,
    iters: usize,
    seed: u64,
) -> SchemeResult {
    let cluster = common::cloud_cluster(params.n, preset, seed);
    let cfg = common::exec(params, cluster, kind, predictor, 14);
    let mut svm =
        DistributedSvm::new(data, &cfg, 0.2, 1e-3).expect("experiment configuration is valid");
    // Warm-up: the paper's deployment predicts from *history*; give the
    // online predictors the same advantage before the measured window.
    for _ in 0..2 {
        svm.step().expect("warmup iteration succeeds");
    }
    let warm_latency = svm.total_latency();
    for _ in 0..iters {
        svm.step().expect("iteration succeeds");
    }
    SchemeResult {
        label: label.to_string(),
        latency: svm.total_latency() - warm_latency,
        forward_metrics: svm_forward_metrics(&svm),
    }
}

/// The wasted-computation figures use the forward job's accounting (the
/// backward job behaves identically; using one keeps the bars readable).
fn svm_forward_metrics(svm: &DistributedSvm) -> JobMetrics {
    svm.forward_metrics().clone()
}

fn environment(preset: &CloudTraceConfig, name: &str, scale: Scale, seed: u64) -> (Table, Table) {
    let rows = scale.pick(560, 2100);
    let cols = scale.pick(56, 210);
    let iters = scale.pick(5, 15);
    let data = gisette_like(rows, cols, seed);
    let lstm = common::lstm_predictor(preset, seed);

    let mut results: Vec<SchemeResult> = Vec::new();
    results.push(run_scheme(
        &data,
        "over-decomposition",
        MdsParams::new(10, 7),
        StrategyKind::OverDecomposition,
        lstm.clone(),
        preset,
        iters,
        seed,
    ));
    for (n, label) in [(8usize, "mds(8,7)"), (9, "mds(9,7)"), (10, "mds(10,7)")] {
        results.push(run_scheme(
            &data,
            label,
            MdsParams::new(n, 7),
            StrategyKind::MdsCoded,
            PredictorSource::LastValue,
            preset,
            iters,
            seed,
        ));
    }
    for (n, label) in [(8usize, "s2c2(8,7)"), (9, "s2c2(9,7)"), (10, "s2c2(10,7)")] {
        results.push(run_scheme(
            &data,
            label,
            MdsParams::new(n, 7),
            StrategyKind::S2c2General,
            lstm.clone(),
            preset,
            iters,
            seed,
        ));
    }

    let base = results
        .iter()
        .find(|r| r.label == "s2c2(10,7)")
        .expect("baseline scheme present")
        .latency;
    let mut exec_table = Table::new(
        format!("Execution time comparison, {name} (normalized to s2c2(10,7))"),
        vec!["relative execution time".into()],
    );
    for r in &results {
        exec_table.push_row(r.label.clone(), vec![r.latency / base]);
    }

    // Wasted computation per worker: (10,7) MDS vs (10,7) S2C2.
    let mds_waste = results
        .iter()
        .find(|r| r.label == "mds(10,7)")
        .expect("present")
        .forward_metrics
        .wasted_fraction_per_worker();
    let s2c2_waste = results
        .iter()
        .find(|r| r.label == "s2c2(10,7)")
        .expect("present")
        .forward_metrics
        .wasted_fraction_per_worker();
    let mut waste_table = Table::new(
        format!("Wasted computation per worker (%), {name}"),
        vec!["mds(10,7)".into(), "s2c2(10,7)".into()],
    );
    for w in 0..10 {
        waste_table.push_row(
            format!("worker{}", w + 1),
            vec![100.0 * mds_waste[w], 100.0 * s2c2_waste[w]],
        );
    }
    (exec_table, waste_table)
}

/// Runs all four cloud figures.
#[must_use]
pub fn run(scale: Scale) -> CloudFigures {
    let (fig8, fig9) = environment(&CloudTraceConfig::calm(), "low mis-prediction", scale, 0xF8);
    let (fig10, fig11) = environment(
        &CloudTraceConfig::volatile(),
        "high mis-prediction",
        scale,
        0xFA,
    );
    CloudFigures {
        fig8,
        fig9,
        fig10,
        fig11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_misprediction_shape() {
        let figs = run(Scale::Quick);
        let t = &figs.fig8;
        let col = "relative execution time";
        // All MDS variants well above the S2C2(10,7) baseline.
        for mds in ["mds(8,7)", "mds(9,7)", "mds(10,7)"] {
            let v = t.value(mds, col);
            assert!(v > 1.2, "{mds} should cost ~10/7, got {v}");
        }
        // Redundancy ordering within S2C2.
        let s8 = t.value("s2c2(8,7)", col);
        let s9 = t.value("s2c2(9,7)", col);
        assert!(s8 > s9 && s9 > 0.99, "s2c2 ordering: {s8} vs {s9} vs 1.0");
        // S2C2(10,7) wastes ~nothing; MDS wastes heavily on some workers.
        let max_s2c2_waste = figs
            .fig9
            .rows
            .iter()
            .map(|(_, v)| v[1])
            .fold(0.0_f64, f64::max);
        let max_mds_waste = figs
            .fig9
            .rows
            .iter()
            .map(|(_, v)| v[0])
            .fold(0.0_f64, f64::max);
        assert!(max_s2c2_waste < 20.0, "s2c2 waste {max_s2c2_waste}%");
        assert!(max_mds_waste > 50.0, "mds waste {max_mds_waste}%");
    }

    #[test]
    fn high_misprediction_keeps_ordering() {
        let figs = run(Scale::Quick);
        let col = "relative execution time";
        let mds = figs.fig10.value("mds(10,7)", col);
        assert!(mds > 1.0, "mds(10,7) still behind s2c2(10,7): {mds}");
        // Aggregate MDS waste exceeds aggregate S2C2 waste.
        let sum = |t: &Table, c: usize| t.rows.iter().map(|(_, v)| v[c]).sum::<f64>();
        assert!(sum(&figs.fig11, 0) > sum(&figs.fig11, 1));
    }
}
