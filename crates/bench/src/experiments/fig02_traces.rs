//! Figure 2 — representative worker speed traces.
//!
//! The paper plots measured speeds of 4 representative DigitalOcean
//! droplets normalized by each node's maximum. We emit the same view from
//! the calibrated generator plus the §3.2 statistics that motivate
//! prediction (slow variation, high lag-1 autocorrelation).

use crate::experiments::Scale;
use crate::report::Table;
use s2c2_trace::stats;
use s2c2_trace::{CloudTraceConfig, TraceSet};

/// Output: the sampled trace table plus a statistics table.
#[derive(Debug, Clone)]
pub struct TraceFigures {
    /// Normalized speed samples of 4 representative nodes.
    pub traces: Table,
    /// Per-node §3.2 statistics.
    pub stats: Table,
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> TraceFigures {
    let len = scale.pick(60, 300);
    let nodes = scale.pick(20, 100);
    let set = TraceSet::generate(&CloudTraceConfig::paper(), nodes, len, 0xF2);

    // Pick 4 representative nodes: most stable, most volatile, two middle.
    let mut volatility: Vec<(f64, usize)> = (0..nodes)
        .map(|i| {
            let s = set.node(i).samples();
            (stats::std_dev(s) / stats::mean(s), i)
        })
        .collect();
    volatility.sort_by(|a, b| a.0.total_cmp(&b.0));
    let picks = [
        volatility[0].1,
        volatility[nodes / 3].1,
        volatility[2 * nodes / 3].1,
        volatility[nodes - 1].1,
    ];

    let mut traces = Table::new(
        "Fig 2 — speed traces (normalized per node by its max)",
        picks.iter().map(|p| format!("node{p}")).collect(),
    );
    let normalized: Vec<_> = picks
        .iter()
        .map(|&p| set.node(p).normalized_by_max())
        .collect();
    let stride = (len / 30).max(1);
    for t in (0..len).step_by(stride) {
        traces.push_row(
            format!("t{t}"),
            normalized.iter().map(|tr| tr.sample(t)).collect(),
        );
    }

    let mut stat_table = Table::new(
        "Fig 2 stats — §3.2 properties",
        vec![
            "mean speed".into(),
            "cv".into(),
            "lag1 autocorr".into(),
            "median rel step %".into(),
        ],
    );
    for &p in &picks {
        let s = set.node(p).samples();
        let mut steps: Vec<f64> = s.windows(2).map(|w| (w[1] - w[0]).abs() / w[0]).collect();
        steps.sort_by(|a, b| a.total_cmp(b));
        let median_step = if steps.is_empty() {
            0.0
        } else {
            steps[steps.len() / 2]
        };
        stat_table.push_row(
            format!("node{p}"),
            vec![
                stats::mean(s),
                stats::std_dev(s) / stats::mean(s),
                stats::autocorrelation(s, 1),
                100.0 * median_step,
            ],
        );
    }
    TraceFigures {
        traces,
        stats: stat_table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_paper_properties() {
        let out = run(Scale::Quick);
        assert_eq!(out.traces.columns.len(), 4);
        assert!(!out.traces.rows.is_empty());
        // Normalized: every sample in (0, 1].
        for (_, values) in &out.traces.rows {
            for &v in values {
                assert!(v > 0.0 && v <= 1.0 + 1e-12);
            }
        }
        // §3.2: median relative step small (slowly varying) for the most
        // stable node.
        let stable = &out.stats.rows[0];
        assert!(
            stable.1[3] < 10.0,
            "median rel step {}% too large",
            stable.1[3]
        );
    }
}
