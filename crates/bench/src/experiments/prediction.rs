//! §6.1 — speed-prediction model comparison.
//!
//! Paper numbers: LSTM test MAPE 16.7%, better than the best ARIMA
//! (ARIMA(1,0,0)) by ~5 points. We train every model on an 80:20 split of
//! traces from the calibrated generator and report test MAPE plus the
//! >15% mis-prediction rate (the timeout threshold of §4.3).

use crate::experiments::Scale;
use crate::report::Table;
use s2c2_predict::eval::compare_models;
use s2c2_predict::lstm::LstmConfig;
use s2c2_trace::{CloudTraceConfig, TraceSet};

/// Runs the comparison.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let nodes = scale.pick(20, 100);
    let len = scale.pick(150, 300);
    let traces = TraceSet::generate(&CloudTraceConfig::paper(), nodes, len, 0x61);
    let lstm_cfg = LstmConfig {
        epochs: scale.pick(12, 40),
        ..LstmConfig::default()
    };
    let report = compare_models(&traces, 0.8, &lstm_cfg);

    let mut table = Table::new(
        "§6.1 — speed prediction (80:20 split; paper: LSTM 16.7%, ARIMA(1,0,0) ~21.7%)",
        vec!["test MAPE %".into(), "mis-prediction rate %".into()],
    );
    for s in &report.scores {
        table.push_row(s.name.clone(), vec![s.mape, 100.0 * s.misprediction_rate]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_beats_or_matches_every_arima() {
        let t = run(Scale::Quick);
        let lstm = t.value("lstm", "test MAPE %");
        for rival in ["arima(1,0,0)", "arima(2,0,0)", "arima(1,1,1)"] {
            let v = t.value(rival, "test MAPE %");
            assert!(lstm <= v * 1.05, "lstm {lstm} vs {rival} {v}");
        }
        // MAPE lands in a plausible band around the paper's 16.7%.
        assert!(lstm > 2.0 && lstm < 35.0, "lstm MAPE {lstm} out of band");
    }
}
