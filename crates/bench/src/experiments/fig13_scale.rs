//! Figure 13 — scalability: SVM under (50,40)-MDS on a 51-node cluster,
//! MDS vs S²C², low and high mis-prediction.
//!
//! Expected shape: MDS ≈ 1.25× S²C² at low mis-prediction (the exact
//! `(50−40)/40` bound when all 50 workers stay fast), ≈ 1.12× at high.

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_trace::CloudTraceConfig;
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::svm::DistributedSvm;

fn environment(preset: &CloudTraceConfig, scale: Scale, seed: u64) -> Vec<f64> {
    let rows = scale.pick(2000, 6400);
    let cols = scale.pick(200, 640);
    let iters = scale.pick(4, 15);
    let data = gisette_like(rows, cols, seed);
    let params = MdsParams::new(50, 40);
    let lstm = common::lstm_predictor(preset, seed);

    let mut latencies = Vec::with_capacity(2);
    for (kind, predictor) in [
        (StrategyKind::MdsCoded, PredictorSource::LastValue),
        (StrategyKind::S2c2General, lstm),
    ] {
        let cluster = common::cloud_cluster(50, preset, seed);
        let cfg = common::exec(params, cluster, kind, predictor, 10);
        let mut svm =
            DistributedSvm::new(&data, &cfg, 0.2, 1e-3).expect("experiment configuration is valid");
        for _ in 0..2 {
            svm.step().expect("warmup iteration succeeds");
        }
        let warm = svm.total_latency();
        for _ in 0..iters {
            svm.step().expect("iteration succeeds");
        }
        latencies.push(svm.total_latency() - warm);
    }
    let base = latencies[1];
    latencies.iter().map(|l| l / base).collect()
}

/// Runs Figure 13.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 13 — (50,40) on 51 nodes (normalized to s2c2)",
        vec!["mds(50,40)".into(), "s2c2(50,40)".into()],
    );
    table.push_row(
        "low mis-prediction",
        environment(&CloudTraceConfig::calm(), scale, 0xF14),
    );
    table.push_row(
        "high mis-prediction",
        environment(&CloudTraceConfig::volatile(), scale, 0xF15),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mds_trails_s2c2_within_bound() {
        let t = run(Scale::Quick);
        let low = t.value("low mis-prediction", "mds(50,40)");
        assert!(
            low > 1.05 && low < 1.40,
            "low mis-prediction gap should approach 50/40: got {low}"
        );
        let high = t.value("high mis-prediction", "mds(50,40)");
        assert!(high > 1.0, "s2c2 still ahead under volatility: {high}");
    }
}
