//! One module per paper figure (plus the §6.1 prediction table and the
//! DESIGN.md ablations). Every experiment is a pure function
//! `run(Scale) -> Table` (or a small struct of tables).

pub mod ablations;
pub mod baseline;
pub mod common;
pub mod fig01_motivation;
pub mod fig02_traces;
pub mod fig03_storage;
pub mod fig06_logreg;
pub mod fig07_pagerank;
pub mod fig08_cloud;
pub mod fig12_polynomial;
pub mod fig13_scale;
pub mod prediction;

/// Experiment size selector.
///
/// `Full` is what the `figures` binary and EXPERIMENTS.md use; `Quick`
/// shrinks matrices and iteration counts so Criterion benches and smoke
/// tests stay fast while exercising the identical code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for benches/tests.
    Quick,
    /// Paper-shaped sizes for the recorded results.
    Full,
}

impl Scale {
    /// Picks between the quick and full variant of a parameter.
    #[must_use]
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
