//! One module per paper figure (plus the §6.1 prediction table, the
//! DESIGN.md ablations, and the multi-job `serve` scenario). Every
//! experiment is a pure function `run(Scale) -> Table` (or a small
//! struct of tables), and every experiment registers itself in
//! [`registry`] so front-ends discover the full set without hard-coding
//! names.

pub mod ablations;
pub mod baseline;
pub mod batch;
pub mod common;
pub mod e2e;
pub mod fig01_motivation;
pub mod fig02_traces;
pub mod fig03_storage;
pub mod fig06_logreg;
pub mod fig07_pagerank;
pub mod fig08_cloud;
pub mod fig12_polynomial;
pub mod fig13_scale;
pub mod pipeline;
pub mod prediction;
pub mod qos;
pub mod serve;
pub mod trace;

/// Experiment size selector.
///
/// `Full` is what the `figures` binary and EXPERIMENTS.md use; `Quick`
/// shrinks matrices and iteration counts so Criterion benches and smoke
/// tests stay fast while exercising the identical code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for benches/tests.
    Quick,
    /// Paper-shaped sizes for the recorded results.
    Full,
}

impl Scale {
    /// Picks between the quick and full variant of a parameter.
    #[must_use]
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Callback experiments emit tables through: `(table, csv_file_name)`.
pub type EmitFn<'a> = &'a mut dyn FnMut(&crate::report::Table, &str);

/// A registered experiment, discoverable by front-ends.
pub struct ExperimentDef {
    /// Canonical selector (what the `figures` CLI matches).
    pub name: &'static str,
    /// Extra selectors that also run this experiment (e.g. `fig9` runs
    /// the `fig8` family, which emits figures 8–11 together).
    pub aliases: &'static [&'static str],
    /// One-line description shown in `--help` / error listings.
    pub summary: &'static str,
    /// Whether `all` includes it (the baseline rewrites a committed
    /// reference file, so it stays opt-in).
    pub in_all: bool,
    /// Runs the experiment, emitting every table it produces.
    pub run: fn(Scale, EmitFn<'_>),
}

/// Every registered experiment, in the order the paper presents them.
///
/// Front-ends (the `figures` binary, future dashboards) iterate this
/// instead of hard-coding names, so a new experiment module only has to
/// add its entry here to become discoverable.
#[must_use]
pub fn registry() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            name: "fig1",
            aliases: &[],
            summary: "motivation: fixed (n,k) codes pay for absent stragglers",
            in_all: true,
            run: |s, emit| emit(&fig01_motivation::run(s), "fig01_motivation.csv"),
        },
        ExperimentDef {
            name: "fig2",
            aliases: &[],
            summary: "cloud speed traces and their summary statistics",
            in_all: true,
            run: |s, emit| {
                let out = fig02_traces::run(s);
                emit(&out.traces, "fig02_traces.csv");
                emit(&out.stats, "fig02_stats.csv");
            },
        },
        ExperimentDef {
            name: "fig3",
            aliases: &[],
            summary: "effective storage overhead per strategy",
            in_all: true,
            run: |s, emit| emit(&fig03_storage::run(s), "fig03_storage.csv"),
        },
        ExperimentDef {
            name: "prediction",
            aliases: &[],
            summary: "§6.1 speed-prediction accuracy (LSTM/ARIMA/last-value)",
            in_all: true,
            run: |s, emit| emit(&prediction::run(s), "prediction_6_1.csv"),
        },
        ExperimentDef {
            name: "fig6",
            aliases: &[],
            summary: "logistic regression under controlled stragglers",
            in_all: true,
            run: |s, emit| emit(&fig06_logreg::run(s), "fig06_logreg.csv"),
        },
        ExperimentDef {
            name: "fig7",
            aliases: &[],
            summary: "PageRank under controlled stragglers",
            in_all: true,
            run: |s, emit| emit(&fig07_pagerank::run(s), "fig07_pagerank.csv"),
        },
        ExperimentDef {
            name: "fig8",
            aliases: &["fig9", "fig10", "fig11"],
            summary: "cloud environments: latency and wasted work (figs 8–11)",
            in_all: true,
            run: |s, emit| {
                let out = fig08_cloud::run(s);
                emit(&out.fig8, "fig08_cloud_low.csv");
                emit(&out.fig9, "fig09_waste_low.csv");
                emit(&out.fig10, "fig10_cloud_high.csv");
                emit(&out.fig11, "fig11_waste_high.csv");
            },
        },
        ExperimentDef {
            name: "fig12",
            aliases: &[],
            summary: "polynomial-coded Hessian, conventional vs S²C²",
            in_all: true,
            run: |s, emit| emit(&fig12_polynomial::run(s), "fig12_polynomial.csv"),
        },
        ExperimentDef {
            name: "fig13",
            aliases: &[],
            summary: "scaling the cluster size",
            in_all: true,
            run: |s, emit| emit(&fig13_scale::run(s), "fig13_scale.csv"),
        },
        ExperimentDef {
            name: "serve",
            aliases: &[],
            summary: "multi-job service engine: S²C² vs MDS vs uncoded under load",
            in_all: true,
            run: |s, emit| {
                let out = serve::run(s);
                emit(&out.policies, "serve_policies.csv");
                emit(&out.load, "serve_load.csv");
                emit(&out.threads, "serve_threads.csv");
            },
        },
        ExperimentDef {
            name: "e2e",
            aliases: &[],
            summary: "execution backends: sim vs verified vs real threads + encode cache",
            in_all: true,
            run: |s, emit| emit(&e2e::run(s), "e2e_backends.csv"),
        },
        ExperimentDef {
            name: "batch",
            aliases: &[],
            summary: "batched encode/dispatch rounds for small jobs at high arrival rate",
            in_all: true,
            run: |s, emit| emit(&batch::run(s), "batch_rounds.csv"),
        },
        ExperimentDef {
            name: "qos",
            aliases: &[],
            summary: "QoS: tenant-weighted shares and deadline-aware admission",
            in_all: true,
            run: |s, emit| {
                let out = qos::run(s);
                emit(&out.weights, "qos_weights.csv");
                emit(&out.deadline, "qos_deadline.csv");
            },
        },
        ExperimentDef {
            name: "trace",
            aliases: &[],
            summary: "telemetry: trace spans, rung counts, phase profile + exported timelines",
            in_all: true,
            run: |s, emit| {
                emit(&trace::run(s), "trace_telemetry.csv");
                let dir = std::path::PathBuf::from("results");
                match trace::write_exports(s, &dir) {
                    Ok(()) => println!(
                        "[written {} and {}]\n",
                        dir.join("trace_events.jsonl").display(),
                        dir.join("trace_chrome.json").display()
                    ),
                    Err(e) => eprintln!("warning: could not write trace exports: {e}"),
                }
            },
        },
        ExperimentDef {
            name: "pipeline",
            aliases: &[],
            summary: "cross-round pipelined serving: window depth vs tail latency and stalls",
            in_all: true,
            run: |s, emit| {
                let out = pipeline::run(s);
                emit(&out.table, "pipeline_depth.csv");
                let dir = std::path::PathBuf::from("results");
                match pipeline::write_exports(s, &dir) {
                    Ok(()) => println!(
                        "[written {}]\n",
                        dir.join("pipeline_events.jsonl").display()
                    ),
                    Err(e) => eprintln!("warning: could not write pipeline exports: {e}"),
                }
                // Wall-clock timings are machine-dependent, so the bench
                // file is rewritten only by full-scale runs (the scale
                // the committed reference was recorded at).
                if s == Scale::Full {
                    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                        .join("../..")
                        .join("BENCH_PIPELINE.json");
                    match std::fs::write(&path, pipeline::bench_json(&out)) {
                        Ok(()) => println!("[written {}]\n", path.display()),
                        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
                    }
                }
            },
        },
        ExperimentDef {
            name: "ablations",
            aliases: &[],
            summary: "design ablations: chunking, timeout margin, conditioning, predictor",
            in_all: true,
            run: |s, emit| {
                emit(&ablations::chunk_granularity(s), "ablation_chunks.csv");
                emit(&ablations::timeout_margin(s), "ablation_timeout.csv");
                emit(
                    &ablations::parity_conditioning(s),
                    "ablation_conditioning.csv",
                );
                emit(&ablations::predictor_choice(s), "ablation_predictor.csv");
            },
        },
    ]
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let reg = registry();
        let mut names: Vec<&str> = reg
            .iter()
            .flat_map(|e| std::iter::once(e.name).chain(e.aliases.iter().copied()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate experiment selector");
    }

    #[test]
    fn serve_is_registered() {
        assert!(registry().iter().any(|e| e.name == "serve" && e.in_all));
    }
}
