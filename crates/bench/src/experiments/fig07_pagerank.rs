//! Figure 7 — PageRank on the controlled cluster (same sweep as Fig 6).

use crate::experiments::{common, Scale};
use crate::report::Table;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_workloads::datasets::power_law_graph;
use s2c2_workloads::pagerank::DistributedPageRank;

/// Runs Figure 7.
#[must_use]
pub fn run(scale: Scale) -> Table {
    let nodes = scale.pick(480, 2400);
    let iters = scale.pick(5, 15);
    let graph = power_law_graph(nodes, 3, 0xF7);

    let schemes: Vec<(&str, MdsParams, StrategyKind, PredictorSource)> = vec![
        (
            "uncoded-3rep+spec",
            MdsParams::new(12, 12),
            StrategyKind::Replication,
            PredictorSource::LastValue,
        ),
        (
            "mds(12,10)",
            MdsParams::new(12, 10),
            StrategyKind::MdsCoded,
            PredictorSource::LastValue,
        ),
        (
            "mds(12,6)",
            MdsParams::new(12, 6),
            StrategyKind::MdsCoded,
            PredictorSource::LastValue,
        ),
        (
            "s2c2-basic(12,6)",
            MdsParams::new(12, 6),
            StrategyKind::S2c2Basic,
            PredictorSource::LastValue,
        ),
        (
            "s2c2-general(12,6)",
            MdsParams::new(12, 6),
            StrategyKind::S2c2General,
            PredictorSource::Oracle,
        ),
    ];

    let mut table = Table::new(
        "Fig 7 — PageRank relative execution time (normalized to replication @ 0)",
        schemes
            .iter()
            .map(|(l, _, _, _)| (*l).to_string())
            .collect(),
    );
    let max_stragglers = scale.pick(4, 6);
    let mut baseline = None;
    for stragglers in 0..=max_stragglers {
        let mut values = Vec::with_capacity(schemes.len());
        for (_, params, kind, predictor) in &schemes {
            let cluster = common::controlled_cluster(12, stragglers, 0xF7);
            let cfg = common::exec(*params, cluster, *kind, predictor.clone(), 12);
            let mut pr = DistributedPageRank::new(&graph, &cfg, 0.85)
                .expect("experiment configuration is valid");
            for _ in 0..iters {
                pr.step().expect("iteration succeeds");
            }
            values.push(pr.total_latency());
        }
        if baseline.is_none() {
            baseline = Some(values[0]);
        }
        let base = baseline.expect("set on first row");
        table.push_row(
            format!("{stragglers} stragglers"),
            values.iter().map(|v| v / base).collect(),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2c2_wins_and_mds_collapses() {
        let t = run(Scale::Quick);
        let s0 = t.value("0 stragglers", "s2c2-general(12,6)");
        let c0 = t.value("0 stragglers", "mds(12,6)");
        assert!(c0 / s0 > 1.3, "s2c2 {s0} vs conservative mds {c0}");
        let m0 = t.value("0 stragglers", "mds(12,10)");
        let m3 = t.value("3 stragglers", "mds(12,10)");
        assert!(m3 / m0 > 2.5, "(12,10) collapse: {m0} -> {m3}");
        // General <= basic at every straggler count.
        for row in ["0 stragglers", "2 stragglers", "4 stragglers"] {
            let b = t.value(row, "s2c2-basic(12,6)");
            let g = t.value(row, "s2c2-general(12,6)");
            assert!(g <= b * 1.05, "{row}: general {g} vs basic {b}");
        }
    }
}
