//! Benchmark harness regenerating every figure of the S²C² paper.
//!
//! Each module under [`experiments`] implements one figure (or figure
//! family) as a pure function from a scale-reduced but shape-preserving
//! configuration to a [`report::Table`]. Two front-ends consume them:
//!
//! * the `figures` binary (`cargo run -p s2c2-bench --release --bin
//!   figures -- all`) prints paper-vs-measured tables and writes CSVs
//!   under `results/`;
//! * the Criterion benches (`cargo bench`) print the same tables once and
//!   then time the core operation of each experiment.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator,
//! not a 13-node Xeon cluster) — EXPERIMENTS.md records the shape
//! comparison figure by figure.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
