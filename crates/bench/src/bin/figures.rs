//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p s2c2-bench --release --bin figures -- all
//! cargo run -p s2c2-bench --release --bin figures -- fig6 fig8
//! cargo run -p s2c2-bench --release --bin figures -- --quick all
//! ```
//!
//! Tables are printed to stdout and written as CSV under `results/`.

use s2c2_bench::experiments::{
    ablations, baseline, fig01_motivation, fig02_traces, fig03_storage, fig06_logreg,
    fig07_pagerank, fig08_cloud, fig12_polynomial, fig13_scale, prediction, Scale,
};
use s2c2_bench::report::Table;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    PathBuf::from("results")
}

fn emit(table: &Table, file: &str) {
    println!("{}", table.render());
    let path = out_dir().join(file);
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[written {}]", path.display());
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let selected = if selected.is_empty() {
        vec!["all"]
    } else {
        selected
    };
    let want = |name: &str| selected.contains(&"all") || selected.contains(&name);

    if want("fig1") {
        emit(&fig01_motivation::run(scale), "fig01_motivation.csv");
    }
    if want("fig2") {
        let out = fig02_traces::run(scale);
        emit(&out.traces, "fig02_traces.csv");
        emit(&out.stats, "fig02_stats.csv");
    }
    if want("fig3") {
        emit(&fig03_storage::run(scale), "fig03_storage.csv");
    }
    if want("prediction") {
        emit(&prediction::run(scale), "prediction_6_1.csv");
    }
    if want("fig6") {
        emit(&fig06_logreg::run(scale), "fig06_logreg.csv");
    }
    if want("fig7") {
        emit(&fig07_pagerank::run(scale), "fig07_pagerank.csv");
    }
    if want("fig8") || want("fig9") || want("fig10") || want("fig11") {
        let out = fig08_cloud::run(scale);
        emit(&out.fig8, "fig08_cloud_low.csv");
        emit(&out.fig9, "fig09_waste_low.csv");
        emit(&out.fig10, "fig10_cloud_high.csv");
        emit(&out.fig11, "fig11_waste_high.csv");
    }
    if want("fig12") {
        emit(&fig12_polynomial::run(scale), "fig12_polynomial.csv");
    }
    if want("fig13") {
        emit(&fig13_scale::run(scale), "fig13_scale.csv");
    }
    // `baseline` is opt-in only (not part of `all`): it rewrites the
    // committed BENCH_BASELINE.json reference file.
    if selected.contains(&"baseline") {
        let b = baseline::run();
        let json = b.to_json();
        print!("{json}");
        // Anchor to the workspace root so the committed reference file is
        // rewritten regardless of the invoking cwd.
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_BASELINE.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("[written {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        println!();
    }
    if want("ablations") {
        emit(&ablations::chunk_granularity(scale), "ablation_chunks.csv");
        emit(&ablations::timeout_margin(scale), "ablation_timeout.csv");
        emit(
            &ablations::parity_conditioning(scale),
            "ablation_conditioning.csv",
        );
        emit(
            &ablations::predictor_choice(scale),
            "ablation_predictor.csv",
        );
    }
}
