//! Regenerates every table and figure of the paper, plus the service
//! scenarios — driven by the experiment registry, so `--help` always
//! lists exactly what is runnable.
//!
//! ```text
//! cargo run -p s2c2-bench --release --bin figures -- all
//! cargo run -p s2c2-bench --release --bin figures -- fig6 serve
//! cargo run -p s2c2-bench --release --bin figures -- --quick all
//! cargo run -p s2c2-bench --release --bin figures -- baseline   # rewrites BENCH_BASELINE.json
//! ```
//!
//! Tables are printed to stdout and written as CSV under `results/`.

use s2c2_bench::experiments::{baseline, registry, Scale};
use s2c2_bench::report::Table;
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    PathBuf::from("results")
}

fn emit(table: &Table, file: &str) {
    println!("{}", table.render());
    let path = out_dir().join(file);
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[written {}]", path.display());
    }
    println!();
}

fn print_usage() {
    eprintln!("usage: figures [--quick] <experiment>...\n");
    eprintln!("experiments:");
    for def in registry() {
        let alias = if def.aliases.is_empty() {
            String::new()
        } else {
            format!(" (also: {})", def.aliases.join(", "))
        };
        eprintln!("  {:<12} {}{alias}", def.name, def.summary);
    }
    eprintln!("  {:<12} {}", "baseline", baseline::SUMMARY);
    eprintln!(
        "  {:<12} runs every experiment above except `baseline`",
        "all"
    );
}

fn run_baseline() {
    let b = baseline::run();
    let json = b.to_json();
    print!("{json}");
    // Anchor to the workspace root so the committed reference file is
    // rewritten regardless of the invoking cwd.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_BASELINE.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    // Flags are validated as strictly as experiment names: a typo like
    // `--quik` must not silently run the full-scale suite.
    let unknown_flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--") && *a != "--quick")
        .map(String::as_str)
        .collect();
    if !unknown_flags.is_empty() {
        eprintln!("unknown flag(s): {}\n", unknown_flags.join(", "));
        print_usage();
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let selected = if selected.is_empty() {
        vec!["all"]
    } else {
        selected
    };

    let reg = registry();
    // Reject unknown selectors up front, with the full listing — new
    // experiments are discoverable instead of silently skipped.
    let known = |name: &str| {
        name == "all"
            || name == "baseline"
            || reg
                .iter()
                .any(|d| d.name == name || d.aliases.contains(&name))
    };
    let unknown: Vec<&str> = selected.iter().copied().filter(|s| !known(s)).collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {}\n", unknown.join(", "));
        print_usage();
        std::process::exit(2);
    }

    let all = selected.contains(&"all");
    for def in &reg {
        let wanted = (all && def.in_all)
            || selected.contains(&def.name)
            || def.aliases.iter().any(|a| selected.contains(a));
        if wanted {
            (def.run)(scale, &mut emit);
        }
    }
    // `baseline` is opt-in only (not part of `all`): it rewrites the
    // committed BENCH_BASELINE.json reference file.
    if selected.contains(&"baseline") {
        run_baseline();
    }
}
