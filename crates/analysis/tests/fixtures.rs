//! Fixture-based end-to-end tests: known-bad snippets must fire, waived
//! and lexer-edge-case snippets must not, and the live workspace tree
//! must scan clean.
//!
//! Fixtures live under `tests/fixtures/` as real files (excluded from
//! live scans by `scan::SKIP_PREFIXES`) and are analyzed under
//! *synthetic* workspace paths so each rule's scoping is exercised
//! exactly as in production.

use s2c2_analysis::rules::{analyze_source, Severity, WAIVER_SYNTAX};
use s2c2_analysis::semantic::analyze_workspace_sources;
use s2c2_analysis::WorkspaceAnalysis;

/// The strictest synthetic path: every rule applies to an engine
/// decision file.
const ENGINE_PATH: &str = "crates/serve/src/engine/core.rs";

/// Runs the full workspace pass over synthetic `(path, source)` pairs.
fn ws(files: &[(&str, &str)]) -> WorkspaceAnalysis {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
        .collect();
    analyze_workspace_sources(&owned)
}

fn ws_active_deny(out: &WorkspaceAnalysis, rule: &str) -> Vec<(String, u32, String)> {
    out.findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Deny && !f.waived)
        .map(|f| (f.file.clone(), f.line, f.message.clone()))
        .collect()
}

fn active_deny(path: &str, src: &str) -> Vec<(String, u32, String)> {
    analyze_source(path, src)
        .findings
        .into_iter()
        .filter(|f| f.severity == Severity::Deny && !f.waived)
        .map(|f| (f.rule.to_string(), f.line, f.message))
        .collect()
}

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    let mut rules: Vec<String> = active_deny(path, src)
        .into_iter()
        .map(|(rule, _, _)| rule)
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

// --- known-bad fixtures: every rule fires -------------------------------

#[test]
fn bad_wall_clock_fires() {
    let src = include_str!("fixtures/bad_wall_clock.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(fired.contains(&"no-wall-clock".to_string()), "{fired:?}");
    // Both the type names and the std::time path are caught.
    let hits = active_deny(ENGINE_PATH, src)
        .into_iter()
        .filter(|(r, _, _)| r == "no-wall-clock")
        .count();
    assert!(hits >= 3, "Instant, SystemTime, and std::time all flagged");
}

#[test]
fn bad_wall_clock_is_allowed_in_measurement_site() {
    // The same source under the designated measurement path is clean:
    // scoping is per-rule, per-path.
    let src = include_str!("fixtures/bad_wall_clock.rs");
    let fired = rules_fired("crates/serve/src/engine/backend.rs", src);
    assert!(!fired.contains(&"no-wall-clock".to_string()), "{fired:?}");
}

#[test]
fn bad_unordered_fires() {
    let src = include_str!("fixtures/bad_unordered.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(
        fired.contains(&"no-unordered-iteration".to_string()),
        "{fired:?}"
    );
    // Out of scope for a crate that never feeds the trace stream.
    assert!(rules_fired("crates/trace/src/model.rs", src).is_empty());
}

#[test]
fn bad_partial_cmp_fires_workspace_wide_but_not_in_tests() {
    let src = include_str!("fixtures/bad_partial_cmp.rs");
    for path in [
        ENGINE_PATH,
        "crates/linalg/src/solve.rs",
        "examples/pagerank.rs",
        "src/lib.rs",
    ] {
        assert!(
            rules_fired(path, src).contains(&"no-partial-float-order".to_string()),
            "{path} must be in scope"
        );
    }
    // Test paths are exempt.
    assert!(rules_fired("crates/linalg/tests/proptest_kernels.rs", src).is_empty());
}

#[test]
fn bad_panic_fires_all_constructs() {
    let src = include_str!("fixtures/bad_panic.rs");
    let msgs: Vec<String> = active_deny(ENGINE_PATH, src)
        .into_iter()
        .filter(|(r, _, _)| r == "no-panic-paths")
        .map(|(_, _, m)| m)
        .collect();
    for needle in ["`.unwrap()`", "`.expect()`", "`panic!`", "`unreachable!`"] {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "{needle} missing from {msgs:?}"
        );
    }
    // Panic-freedom is a serve-only rule.
    assert!(!rules_fired("crates/linalg/src/solve.rs", src).contains(&"no-panic-paths".to_string()));
}

#[test]
fn bad_unsafe_fires_and_is_inventoried() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    // The audit covers everything, vendored shims included.
    for path in [ENGINE_PATH, "vendor/crossbeam/src/lib.rs"] {
        let out = analyze_source(path, src);
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "unsafe-audit" && !f.waived));
        assert_eq!(out.unsafe_sites.len(), 1);
        assert!(!out.unsafe_sites[0].has_safety);
    }
}

#[test]
fn bad_waivers_are_findings_and_do_not_silence() {
    let src = include_str!("fixtures/bad_waiver.rs");
    let found = active_deny(ENGINE_PATH, src);
    // Two malformed waivers (missing justification, unknown rule)…
    assert_eq!(
        found.iter().filter(|(r, _, _)| r == WAIVER_SYNTAX).count(),
        2,
        "{found:?}"
    );
    // …and the HashMap findings they failed to cover still fire.
    assert!(found.iter().any(|(r, _, _)| r == "no-unordered-iteration"));
}

// --- waived fixture: justified waivers silence everything ----------------

#[test]
fn justified_waivers_silence_every_rule() {
    let src = include_str!("fixtures/waived_all.rs");
    let found = active_deny(ENGINE_PATH, src);
    assert!(found.is_empty(), "expected zero active findings: {found:?}");
    // The waived findings are still recorded, with their justifications.
    let out = analyze_source(ENGINE_PATH, src);
    let waived: Vec<_> = out.findings.iter().filter(|f| f.waived).collect();
    assert!(waived.len() >= 5, "waivers recorded: {}", waived.len());
    assert!(waived.iter().all(|f| f
        .justification
        .as_deref()
        .is_some_and(|j| j.contains("fixture"))));
    // The SAFETY-commented unsafe block is inventoried, not flagged.
    assert_eq!(out.unsafe_sites.len(), 1);
    assert!(out.unsafe_sites[0].has_safety);
}

// --- lexer edge cases: zero false positives ------------------------------

#[test]
fn lexer_edge_cases_produce_zero_findings() {
    let src = include_str!("fixtures/clean_lexer_edges.rs");
    let out = analyze_source(ENGINE_PATH, src);
    let active: Vec<_> = out.findings.iter().filter(|f| !f.waived).collect();
    assert!(
        active.is_empty(),
        "false positives in lexer edge cases: {active:?}"
    );
    assert!(
        out.unsafe_sites.is_empty(),
        "`unsafe` only ever in comments"
    );
}

// --- semantic fixtures: item tree + call graph rules ---------------------

#[test]
fn semantic_catch_all_over_registered_enum_fires() {
    let out = ws(&[(
        "crates/serve/src/event.rs",
        include_str!("fixtures/bad_event_catch_all.rs"),
    )]);
    let hits = ws_active_deny(&out, "exhaustive-event-match");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].2.contains("EventKind"), "{}", hits[0].2);
}

#[test]
fn semantic_deleted_variant_arm_fires() {
    // The acceptance case: deleting a variant's arm (no catch-all left
    // behind) is caught by variant-coverage alone.
    let out = ws(&[(
        "crates/serve/src/event.rs",
        include_str!("fixtures/bad_event_missing_variant.rs"),
    )]);
    let hits = ws_active_deny(&out, "exhaustive-event-match");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].2.contains("BatchFlush"),
        "missing variant named: {}",
        hits[0].2
    );
}

#[test]
fn semantic_panic_reachability_traces_cross_crate() {
    let entry = include_str!("fixtures/entry_serve.rs");
    let helper = include_str!("fixtures/bad_panic_reach.rs");
    let out = ws(&[
        ("crates/serve/src/lib.rs", entry),
        ("crates/coding/src/decode.rs", helper),
    ]);
    let hits = ws_active_deny(&out, "panic-reachability");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "crates/coding/src/decode.rs");
    assert!(
        hits[0].2.contains("handle_request")
            && hits[0].2.contains("->")
            && hits[0].2.contains("inner_step"),
        "path rendered: {}",
        hits[0].2
    );
    // Without the serve entry the same helper is unreachable: clean.
    let alone = ws(&[("crates/coding/src/decode.rs", helper)]);
    assert!(ws_active_deny(&alone, "panic-reachability").is_empty());
}

#[test]
fn semantic_hash_rooted_reduction_fires_outside_hashmap_ban_scope() {
    let out = ws(&[(
        "crates/cluster/src/weights.rs",
        include_str!("fixtures/bad_float_reduction.rs"),
    )]);
    // The token rule does not apply in crates/cluster — only the
    // semantic reduction rule catches this.
    assert!(ws_active_deny(&out, "no-unordered-iteration").is_empty());
    let hits = ws_active_deny(&out, "unordered-float-reduction");
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn semantic_stale_waiver_fires() {
    let out = ws(&[(
        "crates/serve/src/engine/core.rs",
        include_str!("fixtures/bad_stale_waiver.rs"),
    )]);
    let hits = ws_active_deny(&out, "stale-waiver");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].2.contains("no-unordered-iteration"),
        "stale rule named: {}",
        hits[0].2
    );
}

#[test]
fn semantic_waivers_silence_and_are_not_stale() {
    let out = ws(&[(
        "crates/serve/src/shims.rs",
        include_str!("fixtures/waived_semantic.rs"),
    )]);
    let active: Vec<_> = out
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny && !f.waived)
        .collect();
    assert!(active.is_empty(), "expected zero active: {active:?}");
    let waived: Vec<_> = out.findings.iter().filter(|f| f.waived).collect();
    assert_eq!(waived.len(), 4, "{waived:?}");
    assert!(waived.iter().all(|f| f
        .justification
        .as_deref()
        .is_some_and(|j| j.contains("fixture"))));
}

#[test]
fn semantic_edge_cases_produce_zero_findings() {
    let out = ws(&[(
        ENGINE_PATH,
        include_str!("fixtures/clean_semantic_edges.rs"),
    )]);
    let semantic: Vec<_> = out
        .findings
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                "exhaustive-event-match"
                    | "panic-reachability"
                    | "unordered-float-reduction"
                    | "stale-waiver"
            )
        })
        .collect();
    assert!(
        semantic.is_empty(),
        "false positives in semantic edge cases: {semantic:?}"
    );
    // All four matches over EventKind were seen and judged exhaustive.
    assert!(out.stats.matches_over_registered >= 3);
}

// --- the tree itself ------------------------------------------------------

#[test]
fn live_workspace_scans_clean() {
    // The repo root is two levels above this crate. Running the full
    // scan here keeps `cargo test` and the CI `analysis` job enforcing
    // the same invariant.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf();
    let scan = s2c2_analysis::scan_workspace(&root).expect("workspace scan succeeds");
    let active: Vec<_> = scan
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny && !f.waived)
        .map(|f| format!("{}:{}:{} {}", f.file, f.line, f.col, f.rule))
        .collect();
    assert!(
        active.is_empty(),
        "the tree must stay lint-clean (fix or waive):\n{}",
        active.join("\n")
    );
    // Fixture corpus is excluded from live scans.
    assert!(scan
        .findings
        .iter()
        .all(|f| !f.file.contains("tests/fixtures")));
    // The semantic pass ran over the live tree: the call graph is
    // populated, serve has entry points, and every registered enum
    // definition was found.
    assert!(scan.stats.graph_fns > 100, "{:?}", scan.stats);
    assert!(scan.stats.entry_points > 10, "{:?}", scan.stats);
    assert_eq!(scan.stats.registered_enums, 7, "{:?}", scan.stats);
    assert!(scan.stats.matches_over_registered > 10, "{:?}", scan.stats);
    // Waiver hygiene: every waiver in the tree covers a live finding
    // (stale-waiver would otherwise have denied above).
    assert!(scan
        .findings
        .iter()
        .all(|f| f.rule != "stale-waiver" || f.waived));
}
