//! Fixture-based end-to-end tests: known-bad snippets must fire, waived
//! and lexer-edge-case snippets must not, and the live workspace tree
//! must scan clean.
//!
//! Fixtures live under `tests/fixtures/` as real files (excluded from
//! live scans by `scan::SKIP_PREFIXES`) and are analyzed under
//! *synthetic* workspace paths so each rule's scoping is exercised
//! exactly as in production.

use s2c2_analysis::rules::{analyze_source, Severity, WAIVER_SYNTAX};

/// The strictest synthetic path: every rule applies to an engine
/// decision file.
const ENGINE_PATH: &str = "crates/serve/src/engine/core.rs";

fn active_deny(path: &str, src: &str) -> Vec<(String, u32, String)> {
    analyze_source(path, src)
        .findings
        .into_iter()
        .filter(|f| f.severity == Severity::Deny && !f.waived)
        .map(|f| (f.rule.to_string(), f.line, f.message))
        .collect()
}

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    let mut rules: Vec<String> = active_deny(path, src)
        .into_iter()
        .map(|(rule, _, _)| rule)
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

// --- known-bad fixtures: every rule fires -------------------------------

#[test]
fn bad_wall_clock_fires() {
    let src = include_str!("fixtures/bad_wall_clock.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(fired.contains(&"no-wall-clock".to_string()), "{fired:?}");
    // Both the type names and the std::time path are caught.
    let hits = active_deny(ENGINE_PATH, src)
        .into_iter()
        .filter(|(r, _, _)| r == "no-wall-clock")
        .count();
    assert!(hits >= 3, "Instant, SystemTime, and std::time all flagged");
}

#[test]
fn bad_wall_clock_is_allowed_in_measurement_site() {
    // The same source under the designated measurement path is clean:
    // scoping is per-rule, per-path.
    let src = include_str!("fixtures/bad_wall_clock.rs");
    let fired = rules_fired("crates/serve/src/engine/backend.rs", src);
    assert!(!fired.contains(&"no-wall-clock".to_string()), "{fired:?}");
}

#[test]
fn bad_unordered_fires() {
    let src = include_str!("fixtures/bad_unordered.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(
        fired.contains(&"no-unordered-iteration".to_string()),
        "{fired:?}"
    );
    // Out of scope for a crate that never feeds the trace stream.
    assert!(rules_fired("crates/trace/src/model.rs", src).is_empty());
}

#[test]
fn bad_partial_cmp_fires_workspace_wide_but_not_in_tests() {
    let src = include_str!("fixtures/bad_partial_cmp.rs");
    for path in [
        ENGINE_PATH,
        "crates/linalg/src/solve.rs",
        "examples/pagerank.rs",
        "src/lib.rs",
    ] {
        assert!(
            rules_fired(path, src).contains(&"no-partial-float-order".to_string()),
            "{path} must be in scope"
        );
    }
    // Test paths are exempt.
    assert!(rules_fired("crates/linalg/tests/proptest_kernels.rs", src).is_empty());
}

#[test]
fn bad_panic_fires_all_constructs() {
    let src = include_str!("fixtures/bad_panic.rs");
    let msgs: Vec<String> = active_deny(ENGINE_PATH, src)
        .into_iter()
        .filter(|(r, _, _)| r == "no-panic-paths")
        .map(|(_, _, m)| m)
        .collect();
    for needle in ["`.unwrap()`", "`.expect()`", "`panic!`", "`unreachable!`"] {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "{needle} missing from {msgs:?}"
        );
    }
    // Panic-freedom is a serve-only rule.
    assert!(!rules_fired("crates/linalg/src/solve.rs", src).contains(&"no-panic-paths".to_string()));
}

#[test]
fn bad_unsafe_fires_and_is_inventoried() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    // The audit covers everything, vendored shims included.
    for path in [ENGINE_PATH, "vendor/crossbeam/src/lib.rs"] {
        let out = analyze_source(path, src);
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "unsafe-audit" && !f.waived));
        assert_eq!(out.unsafe_sites.len(), 1);
        assert!(!out.unsafe_sites[0].has_safety);
    }
}

#[test]
fn bad_waivers_are_findings_and_do_not_silence() {
    let src = include_str!("fixtures/bad_waiver.rs");
    let found = active_deny(ENGINE_PATH, src);
    // Two malformed waivers (missing justification, unknown rule)…
    assert_eq!(
        found.iter().filter(|(r, _, _)| r == WAIVER_SYNTAX).count(),
        2,
        "{found:?}"
    );
    // …and the HashMap findings they failed to cover still fire.
    assert!(found.iter().any(|(r, _, _)| r == "no-unordered-iteration"));
}

// --- waived fixture: justified waivers silence everything ----------------

#[test]
fn justified_waivers_silence_every_rule() {
    let src = include_str!("fixtures/waived_all.rs");
    let found = active_deny(ENGINE_PATH, src);
    assert!(found.is_empty(), "expected zero active findings: {found:?}");
    // The waived findings are still recorded, with their justifications.
    let out = analyze_source(ENGINE_PATH, src);
    let waived: Vec<_> = out.findings.iter().filter(|f| f.waived).collect();
    assert!(waived.len() >= 5, "waivers recorded: {}", waived.len());
    assert!(waived.iter().all(|f| f
        .justification
        .as_deref()
        .is_some_and(|j| j.contains("fixture"))));
    // The SAFETY-commented unsafe block is inventoried, not flagged.
    assert_eq!(out.unsafe_sites.len(), 1);
    assert!(out.unsafe_sites[0].has_safety);
}

// --- lexer edge cases: zero false positives ------------------------------

#[test]
fn lexer_edge_cases_produce_zero_findings() {
    let src = include_str!("fixtures/clean_lexer_edges.rs");
    let out = analyze_source(ENGINE_PATH, src);
    let active: Vec<_> = out.findings.iter().filter(|f| !f.waived).collect();
    assert!(
        active.is_empty(),
        "false positives in lexer edge cases: {active:?}"
    );
    assert!(
        out.unsafe_sites.is_empty(),
        "`unsafe` only ever in comments"
    );
}

// --- the tree itself ------------------------------------------------------

#[test]
fn live_workspace_scans_clean() {
    // The repo root is two levels above this crate. Running the full
    // scan here keeps `cargo test` and the CI `analysis` job enforcing
    // the same invariant.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf();
    let scan = s2c2_analysis::scan_workspace(&root).expect("workspace scan succeeds");
    let active: Vec<_> = scan
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny && !f.waived)
        .map(|f| format!("{}:{}:{} {}", f.file, f.line, f.col, f.rule))
        .collect();
    assert!(
        active.is_empty(),
        "the tree must stay lint-clean (fix or waive):\n{}",
        active.join("\n")
    );
    // Fixture corpus is excluded from live scans.
    assert!(scan
        .findings
        .iter()
        .all(|f| !f.file.contains("tests/fixtures")));
}
