//! Semantic fixture: a helper-crate panic site. Unreachable on its own;
//! paired with `entry_serve.rs` the call graph must trace
//! entry → decode_block → inner_step and report the `.unwrap()`.

pub fn decode_block(x: usize) -> usize {
    inner_step(x)
}

fn inner_step(x: usize) -> usize {
    x.checked_add(1).unwrap()
}
