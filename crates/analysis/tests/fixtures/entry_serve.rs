//! Semantic fixture: a serve-side public entry point, the root set for
//! `panic-reachability` when paired with `bad_panic_reach.rs`.

pub fn handle_request(x: usize) -> usize {
    decode_block(x)
}
