// Known-bad: panic-prone constructs in non-test serve code.
fn lookup(map: &std::collections::BTreeMap<u64, f64>, id: u64) -> f64 {
    let direct = map.get(&id).unwrap();
    let described = map.get(&id).expect("job is resident");
    if *direct != *described {
        panic!("diverged");
    }
    match id {
        0 => unreachable!(),
        _ => *direct,
    }
}
