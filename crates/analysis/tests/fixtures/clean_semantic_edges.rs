//! Semantic fixture: parser edge cases that must produce zero findings —
//! generics with where-clauses, guards, nested matches, wrapped
//! patterns, macro bodies, and provably ordered float reductions.

pub enum EventKind {
    JobArrival,
    TaskComplete,
    BatchFlush,
}

pub struct Holder<T>
where
    T: Clone + Into<EventKind>,
{
    items: Vec<T>,
}

impl<T> Holder<T>
where
    T: Clone + Into<EventKind>,
{
    pub fn classify(&self, k: EventKind, flag: bool) -> u32 {
        match k {
            EventKind::JobArrival if flag => 10,
            EventKind::JobArrival => 1,
            EventKind::TaskComplete => match flag {
                true => 2,
                false => 3,
            },
            EventKind::BatchFlush => self.items.len() as u32,
        }
    }

    pub fn label(&self, k: &EventKind) -> &'static str {
        match k {
            EventKind::JobArrival => "arrive",
            EventKind::TaskComplete => "done",
            EventKind::BatchFlush => "flush",
        }
    }
}

pub fn wrapped(k: Option<EventKind>) -> u32 {
    match k {
        Some(EventKind::BatchFlush) => 1,
        Some(_) => 2,
        None => 0,
    }
}

pub fn totals(xs: &[f64], v: &Vec<f64>) -> f64 {
    let head: f64 = xs.iter().take(3).sum();
    let scaled = v.iter().map(|x| x * 2.0).sum::<f64>();
    let peak = xs.iter().copied().fold(0.0, f64::max);
    let count: usize = macro_made().iter().sum();
    head + scaled + peak + count as f64
}

fn macro_made() -> Vec<usize> {
    let mut out = vec![0usize; 4];
    out.push(format!("{:?} {:?}", "EventKind::JobArrival", "match _ =>").len());
    out
}
