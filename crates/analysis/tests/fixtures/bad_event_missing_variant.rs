//! Semantic fixture: a deleted variant arm. No catch-all, but the
//! `BatchFlush` arm is gone — `exhaustive-event-match` must report the
//! missing variant without ever invoking rustc.

pub enum EventKind {
    JobArrival,
    TaskComplete,
    BatchFlush,
}

pub fn interpret(k: EventKind) -> u32 {
    match k {
        EventKind::JobArrival => 1,
        EventKind::TaskComplete => 2,
    }
}
