// Known-bad: partial_cmp on float keys (NaN-unsound, panics via unwrap).
fn rank(times: &mut Vec<f64>) {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
