//! Semantic fixture: justified waivers silence the semantic rules, and
//! because they cover live findings they are not stale.

// s2c2-allow: no-unordered-iteration -- fixture: keyed lookups only, never iterated in order
use std::collections::HashMap;

pub enum EventKind {
    JobArrival,
    TaskComplete,
    BatchFlush,
}

pub fn interpret(k: EventKind) -> u32 {
    match k {
        EventKind::JobArrival => 1,
        // s2c2-allow: exhaustive-event-match -- fixture: forwarding shim, variants handled downstream
        _ => 0,
    }
}

// s2c2-allow: no-unordered-iteration -- fixture: keyed lookups only, never iterated in order
pub fn total(weights: &HashMap<u32, f64>) -> f64 {
    // s2c2-allow: unordered-float-reduction -- fixture: all weights are equal so order cannot matter
    weights.values().sum::<f64>()
}
