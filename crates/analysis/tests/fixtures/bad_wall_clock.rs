// Known-bad: wall-clock reads in a decision path. Scanned under a
// synthetic engine path by the fixture harness; never compiled.
use std::time::Instant;

fn decide(deadline: f64) -> bool {
    let now = Instant::now();
    now.elapsed().as_secs_f64() < deadline
}

fn also_bad() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
