// Known-bad: an undocumented unsafe block (no safety comment at all).
fn head(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() }
}
