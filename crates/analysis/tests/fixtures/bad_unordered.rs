// Known-bad: HashMap/HashSet in an order-sensitive path.
use std::collections::{HashMap, HashSet};

fn tally(events: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut by_job: HashMap<u64, f64> = HashMap::new();
    for &(job, t) in events {
        *by_job.entry(job).or_default() += t;
    }
    let mut seen: HashSet<u64> = HashSet::new();
    seen.extend(by_job.keys().copied());
    by_job.into_iter().collect()
}
