//! Semantic fixture: a waiver whose hazard is gone. The `HashMap` it
//! once covered was deleted, so `stale-waiver` must deny the comment.

// s2c2-allow: no-unordered-iteration -- fixture: covered a HashMap that no longer exists
pub fn nothing_hazardous_here() -> u32 {
    7
}
