//! Semantic fixture: a wildcard arm over a registered engine enum.
//! `exhaustive-event-match` must fire at the `_` arm.

pub enum EventKind {
    JobArrival,
    TaskComplete,
    BatchFlush,
}

pub fn interpret(k: EventKind) -> u32 {
    match k {
        EventKind::JobArrival => 1,
        _ => 0,
    }
}
