// Known-bad: waivers that must themselves be findings.
// s2c2-allow: no-unordered-iteration
use std::collections::HashMap;

// s2c2-allow: not-a-real-rule -- the rule name is unknown
fn noop(_m: HashMap<u64, u64>) {}
