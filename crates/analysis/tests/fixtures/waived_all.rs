// Every rule violated once, every violation carrying a justified
// waiver: this file must produce zero active findings.
// s2c2-allow: no-wall-clock -- fixture: measurement-only helper mirrored from backend.rs
use std::time::Instant;

// s2c2-allow: no-unordered-iteration -- fixture: keyed lookups only, never iterated
use std::collections::HashMap;

fn order(a: f64, b: f64) -> std::cmp::Ordering {
    // s2c2-allow: no-partial-float-order -- fixture: inputs proven finite by the caller
    a.partial_cmp(&b).unwrap() // s2c2-allow: no-panic-paths -- fixture: same finiteness proof covers the unwrap
}

// s2c2-allow: no-unordered-iteration -- fixture: parameter type only, nothing iterates it
fn timed(map: &HashMap<u64, f64>) -> f64 {
    // s2c2-allow: no-wall-clock -- fixture: measurement-only site
    let t0 = Instant::now();
    // SAFETY: fixture — the pointer derives from a live reference.
    let v = unsafe { *std::ptr::addr_of!(map).cast::<f64>() };
    v + t0.elapsed().as_secs_f64()
}
