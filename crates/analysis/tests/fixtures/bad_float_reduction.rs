//! Semantic fixture: an f64 reduction whose chain roots in a hash
//! container — `unordered-float-reduction` must deny it even in crates
//! where HashMap itself is allowed.

use std::collections::HashMap;

pub fn total(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}
