// Lexer edge cases: every banned construct below appears only inside
// comments, strings, raw strings, byte strings, or char literals. The
// fixture harness scans this file under the *strictest* synthetic path
// (an engine decision path) and asserts zero findings.

/* Block comment mentioning HashMap::new() and Instant::now()
   /* with a nested block comment calling x.partial_cmp(y).unwrap() */
   still inside the outer comment: panic!("no") */

// Line comment: foo.unwrap(); unsafe { }; SystemTime::now()

fn raw_strings() -> Vec<&'static str> {
    vec![
        r"plain raw: x.unwrap()",
        r#"one guard: HashMap<"k", "v"> and Instant::now()"#,
        r##"two guards: "# not a terminator" partial_cmp"##,
    ]
}

fn strings_and_bytes() -> (&'static [u8], &'static [u8], &'static str) {
    (
        b"byte string: y.expect(\"no\") unsafe",
        br#"raw bytes: HashSet::new() // not a comment"#,
        "escaped quote \" then unwrap() and \\",
    )
}

fn char_literals() -> (char, char, char, char, u8) {
    // '"' must not open a string; '/' must not open a comment; '\'' is
    // an escaped quote; lifetimes ('a) must not eat the code after them.
    let quote = '"';
    let slash = '/';
    let escaped = '\'';
    let unicode = '\u{1F600}';
    let byte = b'x';
    (quote, slash, escaped, unicode, byte)
}

fn lifetimes<'a>(x: &'a str) -> &'a str {
    let _one_char_lifetime: &'_ str = x;
    x
}
