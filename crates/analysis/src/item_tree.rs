//! A lightweight item-tree parser over the lexer's token stream.
//!
//! [`crate::lexer`] guarantees that nothing inside strings or comments
//! reaches this layer; this module recovers just enough *structure* for
//! the semantic rules: which functions exist (with signatures, bodies,
//! and visibility), which enums declare which variants, which struct
//! fields have which types, where every `match` expression sits and what
//! its arms look like, and what `pub use` re-exports.
//!
//! The parser is deliberately tolerant: it never errors, it skips what
//! it does not understand, and it tracks only the block structure it
//! needs (module path, impl type, brace/paren/bracket balance, generic
//! angle brackets in signature position). That is enough to be exact on
//! this workspace's code and fixture corpus — generics, where-clauses,
//! nested matches, match guards, and macro bodies are all covered by
//! tests — while staying a few hundred lines instead of a real frontend.

use crate::lexer::{lex, test_region_mask, Token, TokenKind};

/// One parsed enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name (`EventKind`).
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Declared with `pub` (any visibility qualifier).
    pub is_pub: bool,
}

/// One parsed function (free fn, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name (`fill_window`).
    pub name: String,
    /// Module/impl-qualified name (`engine::ServiceEngine::fill_window`).
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared with `pub` (any visibility qualifier, `pub(crate)`
    /// included).
    pub is_pub: bool,
    /// Declared with exactly `pub` (no restriction) — the workspace-API
    /// surface the call-graph entry points are drawn from.
    pub is_pub_unrestricted: bool,
    /// Inside a `#[cfg(test)]` region or `#[test]` item.
    pub in_test: bool,
    /// Token range of the body (`start..end` indices into the *code*
    /// token index list, braces excluded); empty for bodyless trait fns.
    pub body: (usize, usize),
    /// Parameter `(name, type-text)` pairs, `self` receivers excluded.
    pub params: Vec<(String, String)>,
    /// Return type text (everything between `->` and the body), if any.
    pub ret: Option<String>,
    /// Name of the surrounding `impl` type, if the fn is a method.
    pub impl_type: Option<String>,
}

/// One parsed `struct` definition's named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Named `(field, type-text)` pairs (tuple structs yield none).
    pub fields: Vec<(String, String)>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Declared with `pub`.
    pub is_pub: bool,
}

/// One arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Code-token index range of the pattern (guard excluded).
    pub pattern: (usize, usize),
    /// Whether an `if` guard follows the pattern.
    pub has_guard: bool,
    /// 1-based line the pattern starts on.
    pub line: u32,
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-based line/column of the `match` keyword.
    pub line: u32,
    /// Column of the `match` keyword.
    pub col: u32,
    /// Code-token index range of the scrutinee.
    pub scrutinee: (usize, usize),
    /// The arms, in order.
    pub arms: Vec<MatchArm>,
    /// Inside a test region.
    pub in_test: bool,
}

/// Kind tag for a public item, for the API-surface inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PubItemKind {
    /// `pub fn`.
    Fn,
    /// `pub struct`.
    Struct,
    /// `pub enum`.
    Enum,
    /// `pub trait`.
    Trait,
    /// `pub const` / `pub static`.
    Const,
    /// `pub type`.
    TypeAlias,
    /// `pub mod`.
    Module,
    /// `pub macro_rules!`-exported or other.
    Other,
}

impl PubItemKind {
    /// Stable lowercase tag for JSON output.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            PubItemKind::Fn => "fn",
            PubItemKind::Struct => "struct",
            PubItemKind::Enum => "enum",
            PubItemKind::Trait => "trait",
            PubItemKind::Const => "const",
            PubItemKind::TypeAlias => "type",
            PubItemKind::Module => "mod",
            PubItemKind::Other => "other",
        }
    }
}

/// One `pub` item, for the API-surface audit.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Item name.
    pub name: String,
    /// What kind of item it is.
    pub kind: PubItemKind,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// `true` only for unrestricted `pub` (not `pub(crate)` etc.).
    pub unrestricted: bool,
    /// Inside a test region.
    pub in_test: bool,
}

/// One leaf of a `pub use` re-export tree.
#[derive(Debug, Clone)]
pub struct ReExport {
    /// The source-side leaf name (`TraceBuffer` in
    /// `pub use s2c2_telemetry::TraceBuffer as Buf`), or `*` for globs.
    pub name: String,
    /// The full dotted path prefix the leaf came from, `::`-joined.
    pub path: String,
    /// 1-based line of the leaf.
    pub line: u32,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// All tokens (comments included), as lexed.
    pub tokens: Vec<Token>,
    /// Indices of non-comment tokens — every `(usize, usize)` range in
    /// this struct indexes into this list.
    pub code: Vec<usize>,
    /// Per-token test-region mask (parallel to `tokens`).
    pub test_mask: Vec<bool>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Struct definitions with named fields.
    pub structs: Vec<StructDef>,
    /// Functions, in source order.
    pub fns: Vec<FnDef>,
    /// `match` expressions, in source order (nested ones included).
    pub matches: Vec<MatchExpr>,
    /// `pub` items for the API-surface inventory.
    pub pub_items: Vec<PubItem>,
    /// `pub use` re-export leaves.
    pub reexports: Vec<ReExport>,
}

impl ItemTree {
    /// The token at code index `ci`.
    #[must_use]
    pub fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether the code token at `ci` sits in a test region.
    #[must_use]
    pub fn in_test(&self, ci: usize) -> bool {
        self.test_mask[self.code[ci]]
    }
}

/// Parses one file into its item tree.
#[must_use]
pub fn parse(src: &str) -> ItemTree {
    let tokens = lex(src);
    let test_mask = test_region_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut tree = ItemTree {
        tokens,
        code,
        test_mask,
        ..ItemTree::default()
    };
    let mut p = Parser { tree: &mut tree };
    p.parse_items(0, usize::MAX, &mut Vec::new(), None);
    let mut m = tree.matches.clone();
    m.sort_by_key(|x| (x.line, x.col));
    tree.matches = m;
    tree
}

struct Parser<'a> {
    tree: &'a mut ItemTree,
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct(c)
}

impl Parser<'_> {
    fn len(&self) -> usize {
        self.tree.code.len()
    }

    fn tok_text(&self, ci: usize) -> &str {
        &self.tree.tokens[self.tree.code[ci]].text
    }

    fn tok_kind(&self, ci: usize) -> TokenKind {
        self.tree.tokens[self.tree.code[ci]].kind
    }

    fn tok_pos(&self, ci: usize) -> (u32, u32) {
        let t = &self.tree.tokens[self.tree.code[ci]];
        (t.line, t.col)
    }

    fn punct_at(&self, ci: usize, c: char) -> bool {
        ci < self.len() && is_punct(&self.tree.tokens[self.tree.code[ci]], c)
    }

    fn ident_at(&self, ci: usize) -> bool {
        ci < self.len() && self.tok_kind(ci) == TokenKind::Ident
    }

    /// Skips a balanced `<...>` generic list starting at `ci` (which must
    /// point at `<`), returning the index just past the matching `>`.
    /// `->` arrows inside (`Fn() -> T` bounds) do not close angles.
    fn skip_angles(&self, mut ci: usize) -> usize {
        let mut depth = 0usize;
        while ci < self.len() {
            if self.punct_at(ci, '<') {
                depth += 1;
            } else if self.punct_at(ci, '>') && !(ci > 0 && self.punct_at(ci - 1, '-')) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return ci + 1;
                }
            } else if self.punct_at(ci, '(') || self.punct_at(ci, '[') || self.punct_at(ci, '{') {
                ci = self.skip_balanced(ci);
                continue;
            } else if self.punct_at(ci, ';') {
                // Safety valve: a `;` at angle depth means we misparsed
                // (comparison operator, not generics). Bail.
                return ci;
            }
            ci += 1;
        }
        ci
    }

    /// Skips a balanced bracket group starting at `ci` (which must point
    /// at `(`, `[`, or `{`), returning the index just past the closer.
    fn skip_balanced(&self, mut ci: usize) -> usize {
        let mut depth = 0i64;
        while ci < self.len() {
            match self.tok_kind(ci) {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth <= 0 {
                        return ci + 1;
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        ci
    }

    /// Parses items from code index `ci` until `end` (exclusive) or a
    /// closing `}` at this nesting level. `modules` is the enclosing
    /// module path; `impl_type` the enclosing impl's type name, if any.
    fn parse_items(
        &mut self,
        mut ci: usize,
        end: usize,
        modules: &mut Vec<String>,
        impl_type: Option<&str>,
    ) -> usize {
        let mut vis: Option<bool> = None; // Some(unrestricted) after `pub`
        while ci < self.len() && ci < end {
            let text = self.tok_text(ci).to_string();
            let kind = self.tok_kind(ci);
            match (kind, text.as_str()) {
                (TokenKind::Punct('}'), _) => return ci + 1,
                (TokenKind::Punct('#'), _) if self.punct_at(ci + 1, '[') => {
                    ci = self.skip_balanced(ci + 1);
                }
                (TokenKind::Ident, "pub") => {
                    // `pub(crate)` / `pub(super)` / `pub(in path)`.
                    if self.punct_at(ci + 1, '(') {
                        vis = Some(false);
                        ci = self.skip_balanced(ci + 1);
                    } else {
                        vis = Some(true);
                        ci += 1;
                    }
                    continue; // keep `vis` for the item that follows
                }
                (TokenKind::Ident, "mod") => {
                    let name = self.ident_text(ci + 1).unwrap_or_default();
                    self.record_pub(&name, PubItemKind::Module, ci, vis);
                    if self.punct_at(ci + 2, '{') {
                        modules.push(name);
                        ci = self.parse_items(ci + 3, end, modules, None);
                        modules.pop();
                    } else {
                        ci += 2; // `mod name;`
                        while ci < self.len() && !self.punct_at(ci, ';') {
                            ci += 1;
                        }
                        ci += 1;
                    }
                }
                (TokenKind::Ident, "enum") => {
                    ci = self.parse_enum(ci, vis);
                }
                (TokenKind::Ident, "struct") => {
                    ci = self.parse_struct(ci, vis);
                }
                (TokenKind::Ident, "union") => {
                    ci = self.skip_to_item_end(ci + 1);
                }
                (TokenKind::Ident, "trait") => {
                    let name = self.ident_text(ci + 1).unwrap_or_default();
                    self.record_pub(&name, PubItemKind::Trait, ci, vis);
                    // Trait bodies hold fn signatures and default bodies:
                    // recurse so default methods land in the fn list.
                    let mut j = ci + 2;
                    while j < self.len() && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
                        if self.punct_at(j, '<') {
                            j = self.skip_angles(j);
                        } else {
                            j += 1;
                        }
                    }
                    if self.punct_at(j, '{') {
                        ci = self.parse_items(j + 1, end, modules, Some(&name));
                    } else {
                        ci = j + 1;
                    }
                }
                (TokenKind::Ident, "impl") => {
                    ci = self.parse_impl(ci, end, modules);
                }
                (TokenKind::Ident, "fn") => {
                    ci = self.parse_fn(ci, modules, impl_type, vis);
                }
                (TokenKind::Ident, "const" | "static")
                    if self.ident_at(ci + 1) && self.tok_text(ci + 1) != "fn" =>
                {
                    let name = self.ident_text(ci + 1).unwrap_or_default();
                    self.record_pub(&name, PubItemKind::Const, ci, vis);
                    ci = self.skip_to_item_end(ci + 1);
                }
                (TokenKind::Ident, "type") => {
                    let name = self.ident_text(ci + 1).unwrap_or_default();
                    self.record_pub(&name, PubItemKind::TypeAlias, ci, vis);
                    ci = self.skip_to_item_end(ci + 1);
                }
                (TokenKind::Ident, "use") => {
                    ci = self.parse_use(ci, vis);
                }
                (TokenKind::Ident, "match") => {
                    // A `match` in item position can only happen inside a
                    // body we are scanning linearly; parse it for the
                    // match list, then continue past its scrutinee so
                    // nested matches inside the arms are found too.
                    self.parse_match(ci);
                    ci += 1;
                }
                (TokenKind::Ident, "unsafe" | "async" | "extern" | "default") => {
                    ci += 1;
                    continue; // visibility persists across qualifiers
                }
                _ => {
                    ci += 1;
                }
            }
            vis = None;
        }
        ci
    }

    fn ident_text(&self, ci: usize) -> Option<String> {
        (self.ident_at(ci)).then(|| self.tok_text(ci).to_string())
    }

    fn record_pub(&mut self, name: &str, kind: PubItemKind, ci: usize, vis: Option<bool>) {
        let Some(unrestricted) = vis else { return };
        if name.is_empty() {
            return;
        }
        let (line, _) = self.tok_pos(ci);
        let in_test = self.tree.in_test(ci);
        self.tree.pub_items.push(PubItem {
            name: name.to_string(),
            kind,
            line,
            unrestricted,
            in_test,
        });
    }

    /// Skips to just past the end of a `;`-or-brace-terminated item whose
    /// keyword was already consumed.
    fn skip_to_item_end(&self, mut ci: usize) -> usize {
        while ci < self.len() {
            if self.punct_at(ci, ';') {
                return ci + 1;
            }
            if self.punct_at(ci, '{') {
                return self.skip_balanced(ci);
            }
            if self.punct_at(ci, '<') {
                ci = self.skip_angles(ci);
                continue;
            }
            if self.punct_at(ci, '(') || self.punct_at(ci, '[') {
                ci = self.skip_balanced(ci);
                continue;
            }
            ci += 1;
        }
        ci
    }

    fn parse_enum(&mut self, ci: usize, vis: Option<bool>) -> usize {
        let Some(name) = self.ident_text(ci + 1) else {
            return ci + 1;
        };
        self.record_pub(&name, PubItemKind::Enum, ci, vis);
        let (line, _) = self.tok_pos(ci);
        let mut j = ci + 2;
        if self.punct_at(j, '<') {
            j = self.skip_angles(j);
        }
        // Skip a possible where clause up to the brace.
        while j < self.len() && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
            if self.punct_at(j, '<') {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        if !self.punct_at(j, '{') {
            return j + 1;
        }
        let body_end = self.skip_balanced(j);
        let mut variants = Vec::new();
        let mut k = j + 1;
        let mut expect_variant = true;
        while k + 1 < body_end {
            if self.punct_at(k, '#') && self.punct_at(k + 1, '[') {
                k = self.skip_balanced(k + 1);
                continue;
            }
            if expect_variant && self.ident_at(k) {
                variants.push(self.tok_text(k).to_string());
                expect_variant = false;
                k += 1;
                continue;
            }
            if self.punct_at(k, '(') || self.punct_at(k, '{') || self.punct_at(k, '[') {
                k = self.skip_balanced(k);
                continue;
            }
            if self.punct_at(k, ',') {
                expect_variant = true;
            }
            k += 1;
        }
        self.tree.enums.push(EnumDef {
            name,
            variants,
            line,
            is_pub: vis.is_some(),
        });
        body_end
    }

    fn parse_struct(&mut self, ci: usize, vis: Option<bool>) -> usize {
        let Some(name) = self.ident_text(ci + 1) else {
            return ci + 1;
        };
        self.record_pub(&name, PubItemKind::Struct, ci, vis);
        let (line, _) = self.tok_pos(ci);
        let mut j = ci + 2;
        if self.punct_at(j, '<') {
            j = self.skip_angles(j);
        }
        // Tuple struct `struct X(T);` or unit `struct X;`.
        if self.punct_at(j, '(') {
            let after = self.skip_balanced(j);
            self.tree.structs.push(StructDef {
                name,
                fields: Vec::new(),
                line,
                is_pub: vis.is_some(),
            });
            return self.skip_to_item_end(after);
        }
        while j < self.len() && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
            if self.punct_at(j, '<') {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        if !self.punct_at(j, '{') {
            return j + 1;
        }
        let body_end = self.skip_balanced(j);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k + 1 < body_end {
            if self.punct_at(k, '#') && self.punct_at(k + 1, '[') {
                k = self.skip_balanced(k + 1);
                continue;
            }
            if self.ident_at(k) && self.tok_text(k) == "pub" {
                if self.punct_at(k + 1, '(') {
                    k = self.skip_balanced(k + 1);
                } else {
                    k += 1;
                }
                continue;
            }
            // `name : Type ,`
            if self.ident_at(k) && self.punct_at(k + 1, ':') && !self.punct_at(k + 2, ':') {
                let fname = self.tok_text(k).to_string();
                let ty_start = k + 2;
                let mut t = ty_start;
                while t + 1 < body_end {
                    if self.punct_at(t, ',') {
                        break;
                    }
                    if self.punct_at(t, '<') {
                        t = self.skip_angles(t);
                        continue;
                    }
                    if self.punct_at(t, '(') || self.punct_at(t, '[') || self.punct_at(t, '{') {
                        t = self.skip_balanced(t);
                        continue;
                    }
                    t += 1;
                }
                let ty = self.collect_text(ty_start, t.min(body_end.saturating_sub(1)));
                fields.push((fname, ty));
                k = t + 1;
                continue;
            }
            k += 1;
        }
        self.tree.structs.push(StructDef {
            name,
            fields,
            line,
            is_pub: vis.is_some(),
        });
        body_end
    }

    fn collect_text(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for ci in start..end.min(self.len()) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.tok_text(ci));
        }
        out
    }

    fn parse_impl(&mut self, ci: usize, end: usize, modules: &mut Vec<String>) -> usize {
        let mut j = ci + 1;
        if self.punct_at(j, '<') {
            j = self.skip_angles(j);
        }
        // Collect the head up to `{`, remembering whether a `for` splits
        // trait from type.
        let mut type_start = j;
        while j < self.len() && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
            if self.ident_at(j) && self.tok_text(j) == "for" {
                type_start = j + 1;
            } else if self.ident_at(j) && self.tok_text(j) == "where" {
                break;
            }
            if self.punct_at(j, '<') {
                j = self.skip_angles(j);
            } else if self.punct_at(j, '(') || self.punct_at(j, '[') {
                j = self.skip_balanced(j);
            } else {
                j += 1;
            }
        }
        while j < self.len() && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
            if self.punct_at(j, '<') {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        // First ident of the type path (skipping `&`, `dyn`, `mut`).
        let mut t = type_start;
        let mut type_name = String::new();
        while t < j {
            if self.ident_at(t) {
                let txt = self.tok_text(t);
                if txt != "dyn" && txt != "mut" {
                    type_name = txt.to_string();
                    break;
                }
            }
            t += 1;
        }
        if self.punct_at(j, '{') {
            self.parse_items(j + 1, end, modules, Some(&type_name))
        } else {
            j + 1
        }
    }

    fn parse_fn(
        &mut self,
        ci: usize,
        modules: &[String],
        impl_type: Option<&str>,
        vis: Option<bool>,
    ) -> usize {
        let Some(name) = self.ident_text(ci + 1) else {
            return ci + 1;
        };
        self.record_pub(&name, PubItemKind::Fn, ci, vis);
        let (line, _) = self.tok_pos(ci);
        let mut j = ci + 2;
        if self.punct_at(j, '<') {
            j = self.skip_angles(j);
        }
        if !self.punct_at(j, '(') {
            return j;
        }
        let params_end = self.skip_balanced(j); // just past `)`
        let params = self.parse_params(j + 1, params_end.saturating_sub(1));
        // Return type: `-> Type` until `{`, `;`, or `where`.
        let mut k = params_end;
        let mut ret = None;
        if self.punct_at(k, '-') && self.punct_at(k + 1, '>') {
            let ty_start = k + 2;
            let mut t = ty_start;
            while t < self.len() {
                if self.punct_at(t, '{') || self.punct_at(t, ';') {
                    break;
                }
                if self.ident_at(t) && self.tok_text(t) == "where" {
                    break;
                }
                if self.punct_at(t, '<') {
                    t = self.skip_angles(t);
                    continue;
                }
                if self.punct_at(t, '(') || self.punct_at(t, '[') {
                    t = self.skip_balanced(t);
                    continue;
                }
                t += 1;
            }
            ret = Some(self.collect_text(ty_start, t));
            k = t;
        }
        // Where clause.
        while k < self.len() && !self.punct_at(k, '{') && !self.punct_at(k, ';') {
            if self.punct_at(k, '<') {
                k = self.skip_angles(k);
            } else if self.punct_at(k, '(') || self.punct_at(k, '[') {
                k = self.skip_balanced(k);
            } else {
                k += 1;
            }
        }
        let (body, after) = if self.punct_at(k, '{') {
            let end = self.skip_balanced(k);
            ((k + 1, end.saturating_sub(1)), end)
        } else {
            ((k, k), k + 1) // trait signature, no body
        };
        // Scan the body for `match` expressions.
        let mut b = body.0;
        while b < body.1 {
            if self.ident_at(b) && self.tok_text(b) == "match" {
                self.parse_match(b);
            }
            b += 1;
        }
        let mut qualified = modules.join("::");
        if let Some(t) = impl_type {
            if !t.is_empty() {
                if !qualified.is_empty() {
                    qualified.push_str("::");
                }
                qualified.push_str(t);
            }
        }
        if !qualified.is_empty() {
            qualified.push_str("::");
        }
        qualified.push_str(&name);
        self.tree.fns.push(FnDef {
            name,
            qualified,
            line,
            is_pub: vis.is_some(),
            is_pub_unrestricted: vis == Some(true),
            in_test: self.tree.in_test(ci),
            body,
            params,
            ret,
            impl_type: impl_type
                .filter(|t| !t.is_empty())
                .map(std::string::ToString::to_string),
        });
        after
    }

    fn parse_params(&self, start: usize, end: usize) -> Vec<(String, String)> {
        let mut params = Vec::new();
        let mut k = start;
        while k < end {
            // Each parameter: `name : Type` (skip `self` receivers,
            // `mut` qualifiers, and pattern params we don't need).
            if self.punct_at(k, '#') && self.punct_at(k + 1, '[') {
                k = self.skip_balanced(k + 1);
                continue;
            }
            if self.ident_at(k) && (self.tok_text(k) == "mut" || self.tok_text(k) == "ref") {
                k += 1;
                continue;
            }
            if self.ident_at(k) && self.punct_at(k + 1, ':') && !self.punct_at(k + 2, ':') {
                let pname = self.tok_text(k).to_string();
                let ty_start = k + 2;
                let mut t = ty_start;
                while t < end {
                    if self.punct_at(t, ',') {
                        break;
                    }
                    if self.punct_at(t, '<') {
                        t = self.skip_angles(t);
                        continue;
                    }
                    if self.punct_at(t, '(') || self.punct_at(t, '[') || self.punct_at(t, '{') {
                        t = self.skip_balanced(t);
                        continue;
                    }
                    t += 1;
                }
                params.push((pname, self.collect_text(ty_start, t)));
                k = t + 1;
                continue;
            }
            // Skip anything else (self, &, lifetimes, destructuring pats).
            if self.punct_at(k, '(') || self.punct_at(k, '[') || self.punct_at(k, '{') {
                k = self.skip_balanced(k);
                continue;
            }
            if self.punct_at(k, '<') {
                k = self.skip_angles(k);
                continue;
            }
            k += 1;
        }
        params
    }

    /// Parses a `use` declaration starting at `ci` (the `use` keyword).
    /// Only `pub use` trees are recorded, as re-export leaves.
    fn parse_use(&mut self, ci: usize, vis: Option<bool>) -> usize {
        // Find the end first so malformed trees cannot run away.
        let mut end = ci + 1;
        while end < self.len() && !self.punct_at(end, ';') {
            end += 1;
        }
        if vis.is_some() {
            let mut prefix: Vec<String> = Vec::new();
            self.parse_use_tree(ci + 1, end, &mut prefix);
        }
        end + 1
    }

    /// Recursively walks one `use` tree level, recording leaves.
    fn parse_use_tree(&mut self, mut k: usize, end: usize, prefix: &mut Vec<String>) -> usize {
        let depth_at_entry = prefix.len();
        let mut segment: Option<String> = None;
        while k < end {
            if self.ident_at(k) {
                let txt = self.tok_text(k).to_string();
                if txt == "as" {
                    // Alias: skip the alias ident; the *source* name was
                    // already staged in `segment`.
                    k += 2;
                    continue;
                }
                segment = Some(txt);
                k += 1;
                continue;
            }
            if self.punct_at(k, ':') && self.punct_at(k + 1, ':') {
                if let Some(s) = segment.take() {
                    prefix.push(s);
                }
                k += 2;
                continue;
            }
            if self.punct_at(k, '{') {
                k = self.parse_use_tree(k + 1, end, prefix);
                continue;
            }
            if self.punct_at(k, '*') {
                segment = Some("*".to_string());
                k += 1;
                continue;
            }
            if self.punct_at(k, ',') || self.punct_at(k, '}') {
                if let Some(name) = segment.take() {
                    self.record_reexport(name, prefix, k);
                }
                prefix.truncate(depth_at_entry);
                if self.punct_at(k, '}') {
                    return k + 1;
                }
                k += 1;
                continue;
            }
            k += 1;
        }
        if let Some(name) = segment.take() {
            self.record_reexport(name, prefix, end.saturating_sub(1).max(1));
        }
        prefix.truncate(depth_at_entry);
        end
    }

    fn record_reexport(&mut self, name: String, prefix: &[String], near: usize) {
        if name == "self" {
            // `self` re-exports the module named by the prefix.
            if let Some(last) = prefix.last() {
                let line = self.tok_pos(near.min(self.len().saturating_sub(1))).0;
                self.tree.reexports.push(ReExport {
                    name: last.clone(),
                    path: prefix[..prefix.len() - 1].join("::"),
                    line,
                });
            }
            return;
        }
        let line = self.tok_pos(near.min(self.len().saturating_sub(1))).0;
        self.tree.reexports.push(ReExport {
            name,
            path: prefix.join("::"),
            line,
        });
    }

    /// Parses the `match` expression whose keyword sits at code index
    /// `ci` and records it. Returns without recording when no arm block
    /// is found (e.g. `match` inside an unparsable macro fragment).
    fn parse_match(&mut self, ci: usize) {
        let (line, col) = self.tok_pos(ci);
        // Scrutinee: up to the first `{` at bracket depth 0.
        let mut j = ci + 1;
        while j < self.len() {
            if self.punct_at(j, '{') {
                break;
            }
            if self.punct_at(j, '(') || self.punct_at(j, '[') {
                j = self.skip_balanced(j);
                continue;
            }
            if self.punct_at(j, ';') || self.punct_at(j, '}') {
                return; // not actually a match expression
            }
            j += 1;
        }
        if !self.punct_at(j, '{') {
            return;
        }
        let scrutinee = (ci + 1, j);
        let block_end = self.skip_balanced(j).saturating_sub(1); // index of `}`
        let mut arms = Vec::new();
        let mut k = j + 1;
        while k < block_end {
            // Skip leading attributes on the arm.
            while self.punct_at(k, '#') && self.punct_at(k + 1, '[') {
                k = self.skip_balanced(k + 1);
            }
            if k >= block_end {
                break;
            }
            let pat_start = k;
            let (pat_line, _) = self.tok_pos(k);
            let mut has_guard = false;
            let mut pat_end = k;
            // Pattern (and optional guard) up to `=>` at depth 0.
            while k < block_end {
                if self.punct_at(k, '=') && self.punct_at(k + 1, '>') {
                    break;
                }
                if self.punct_at(k, '(') || self.punct_at(k, '[') || self.punct_at(k, '{') {
                    k = self.skip_balanced(k);
                    continue;
                }
                if self.ident_at(k) && self.tok_text(k) == "if" && !has_guard {
                    has_guard = true;
                    pat_end = k;
                }
                k += 1;
            }
            if !has_guard {
                pat_end = k;
            }
            if k >= block_end {
                break;
            }
            k += 2; // past `=>`
                    // Arm body: a braced block, or an expression up to `,` at
                    // depth 0 (nested matches, calls, and blocks all ride on
                    // bracket balancing).
            if self.punct_at(k, '{') {
                k = self.skip_balanced(k);
                if self.punct_at(k, ',') {
                    k += 1;
                }
            } else {
                while k < block_end {
                    if self.punct_at(k, ',') {
                        k += 1;
                        break;
                    }
                    if self.punct_at(k, '(') || self.punct_at(k, '[') || self.punct_at(k, '{') {
                        k = self.skip_balanced(k);
                        continue;
                    }
                    k += 1;
                }
            }
            arms.push(MatchArm {
                pattern: (pat_start, pat_end),
                has_guard,
                line: pat_line,
            });
        }
        let in_test = self.tree.in_test(ci);
        self.tree.matches.push(MatchExpr {
            line,
            col,
            scrutinee,
            arms,
            in_test,
        });
    }
}

/// Whether a match arm's pattern is an unguarded catch-all: a lone `_`,
/// or a lone lowercase/underscore-starting identifier binding (Rust
/// style reserves CamelCase for variants, so `Uncoded => …` under a
/// glob import is not mistaken for a binding).
#[must_use]
pub fn is_catch_all(tree: &ItemTree, arm: &MatchArm) -> bool {
    if arm.has_guard {
        return false;
    }
    let (s, e) = arm.pattern;
    if e != s + 1 {
        return false;
    }
    let t = tree.tok(s);
    match t.kind {
        TokenKind::Punct('_') => true,
        TokenKind::Ident => {
            let txt = &t.text;
            txt == "_"
                || txt
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
        }
        _ => false,
    }
}

/// Enum names referenced by a match's arm patterns as `Name::…` paths,
/// restricted to `registered` names. Returns them in registry order.
#[must_use]
pub fn arm_enum_refs(tree: &ItemTree, m: &MatchExpr, registered: &[&str]) -> Vec<String> {
    let mut found = Vec::new();
    for name in registered {
        let mentioned = m.arms.iter().any(|arm| {
            let (s, e) = arm.pattern;
            (s..e).any(|ci| {
                tree.tok(ci).kind == TokenKind::Ident
                    && tree.tok(ci).text == *name
                    && ci + 2 < e
                    && is_punct(tree.tok(ci + 1), ':')
                    && is_punct(tree.tok(ci + 2), ':')
            })
        });
        if mentioned {
            found.push((*name).to_string());
        }
    }
    found
}

/// Variant names of `enum_name` matched by the arms (`Enum::Variant`
/// occurrences anywhere in any pattern).
#[must_use]
pub fn arm_variants(tree: &ItemTree, m: &MatchExpr, enum_name: &str) -> Vec<String> {
    let mut vars = Vec::new();
    for arm in &m.arms {
        let (s, e) = arm.pattern;
        for ci in s..e {
            if tree.tok(ci).kind == TokenKind::Ident
                && tree.tok(ci).text == enum_name
                && ci + 3 < e
                && is_punct(tree.tok(ci + 1), ':')
                && is_punct(tree.tok(ci + 2), ':')
                && tree.tok(ci + 3).kind == TokenKind::Ident
            {
                let v = tree.tok(ci + 3).text.clone();
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_enum_variants_with_payloads_and_attrs() {
        let src = "pub enum EventKind {\n  JobArrival(JobSpec),\n  #[allow(dead_code)]\n  TaskComplete { job: u64, redo: bool },\n  BatchFlush,\n}";
        let tree = parse(src);
        assert_eq!(tree.enums.len(), 1);
        assert_eq!(tree.enums[0].name, "EventKind");
        assert_eq!(
            tree.enums[0].variants,
            vec!["JobArrival", "TaskComplete", "BatchFlush"]
        );
        assert!(tree.enums[0].is_pub);
    }

    #[test]
    fn parses_generic_enum_and_where_clause() {
        let src =
            "enum Wrap<T: Clone, const N: usize> where T: Send {\n  One(T),\n  Many([T; N]),\n}";
        let tree = parse(src);
        assert_eq!(tree.enums[0].variants, vec!["One", "Many"]);
    }

    #[test]
    fn parses_fn_signature_params_and_ret() {
        let src = "pub fn f<T: Into<String>>(a: usize, xs: &[f64], t: T) -> Vec<f64> where T: Send { xs.to_vec() }";
        let tree = parse(src);
        assert_eq!(tree.fns.len(), 1);
        let f = &tree.fns[0];
        assert_eq!(f.name, "f");
        assert!(f.is_pub_unrestricted);
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1], ("xs".to_string(), "& [ f64 ]".to_string()));
        assert_eq!(f.ret.as_deref(), Some("Vec < f64 >"));
    }

    #[test]
    fn qualifies_methods_by_module_and_impl() {
        let src = "mod engine {\n  pub struct Engine;\n  impl Engine {\n    pub(crate) fn run(&self) {}\n  }\n  impl Drop for Engine {\n    fn drop(&mut self) {}\n  }\n}";
        let tree = parse(src);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert!(names.contains(&"engine::Engine::run"), "{names:?}");
        assert!(names.contains(&"engine::Engine::drop"), "{names:?}");
        let run = tree.fns.iter().find(|f| f.name == "run").expect("run");
        assert!(run.is_pub && !run.is_pub_unrestricted);
    }

    #[test]
    fn parses_struct_fields_with_generic_types() {
        let src = "pub struct S {\n  pub map: BTreeMap<u64, Vec<f64>>,\n  speeds: Vec<f64>,\n}";
        let tree = parse(src);
        assert_eq!(tree.structs.len(), 1);
        let s = &tree.structs[0];
        assert_eq!(s.fields.len(), 2);
        assert!(s.fields[0].1.contains("BTreeMap"));
        assert_eq!(s.fields[1].0, "speeds");
    }

    #[test]
    fn match_arms_guards_and_catch_all() {
        let src = "fn f(k: EventKind) -> u32 {\n  match k {\n    EventKind::JobArrival(s) if s.ok() => 1,\n    EventKind::BatchFlush => 2,\n    _ => 0,\n  }\n}";
        let tree = parse(src);
        assert_eq!(tree.matches.len(), 1);
        let m = &tree.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(m.arms[0].has_guard);
        assert!(!is_catch_all(&tree, &m.arms[0]));
        assert!(is_catch_all(&tree, &m.arms[2]));
        assert_eq!(arm_enum_refs(&tree, m, &["EventKind"]), vec!["EventKind"]);
        assert_eq!(
            arm_variants(&tree, m, "EventKind"),
            vec!["JobArrival", "BatchFlush"]
        );
    }

    #[test]
    fn nested_matches_are_both_found() {
        let src = "fn f(a: u8, b: u8) -> u8 {\n  match a {\n    0 => match b { 1 => 1, other => other },\n    x => x,\n  }\n}";
        let tree = parse(src);
        assert_eq!(tree.matches.len(), 2);
        // The inner match's binding arm is a catch-all; the `1` literal
        // arm is not.
        let inner = &tree.matches[1];
        assert_eq!(inner.arms.len(), 2);
        assert!(!is_catch_all(&tree, &inner.arms[0]));
        assert!(is_catch_all(&tree, &inner.arms[1]));
    }

    #[test]
    fn uppercase_lone_ident_is_not_a_catch_all() {
        // Unit variants under a glob import look like lone idents;
        // CamelCase exempts them from catch-all classification.
        let src = "fn f(m: SchedulerMode) -> u8 { match m { Uncoded => 0, rest => 1 } }";
        let tree = parse(src);
        let m = &tree.matches[0];
        assert!(!is_catch_all(&tree, &m.arms[0]));
        assert!(is_catch_all(&tree, &m.arms[1]));
    }

    #[test]
    fn match_scrutinee_with_closure_and_method_chain() {
        let src = "fn f(xs: &[u8]) -> usize {\n  match xs.iter().map(|x| { *x as usize }).max() {\n    Some(n) => n,\n    None => 0,\n  }\n}";
        let tree = parse(src);
        assert_eq!(tree.matches.len(), 1);
        assert_eq!(tree.matches[0].arms.len(), 2);
    }

    #[test]
    fn arm_bodies_with_blocks_and_trailing_exprs() {
        let src = "fn f(k: u8) -> u8 {\n  match k {\n    0 => { let x = 1; x },\n    1 => (2, 3).0,\n    _ => 9,\n  }\n}";
        let tree = parse(src);
        assert_eq!(tree.matches[0].arms.len(), 3);
    }

    #[test]
    fn test_regions_mark_matches_and_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t(k: u8) -> u8 { match k { _ => 0 } }\n}";
        let tree = parse(src);
        assert!(tree.matches[0].in_test);
        let t = tree.fns.iter().find(|f| f.name == "t").expect("t parsed");
        assert!(t.in_test);
        let live = tree.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(!live.in_test);
    }

    #[test]
    fn pub_use_reexports_parse_leaves() {
        let src = "pub use s2c2_serve::{ServeConfig, engine::ServiceEngine as Engine};\npub use s2c2_telemetry::TraceBuffer;\nuse std::fmt;\n";
        let tree = parse(src);
        let names: Vec<&str> = tree.reexports.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"ServeConfig"), "{names:?}");
        assert!(names.contains(&"ServiceEngine"), "{names:?}");
        assert!(names.contains(&"TraceBuffer"), "{names:?}");
        // Plain `use` is not a re-export.
        assert!(!names.contains(&"fmt"));
    }

    #[test]
    fn macro_bodies_do_not_derail_item_parsing() {
        let src = "fn f() {\n  println!(\"{} {}\", 1, vec![1, 2][0]);\n  write!(out, \"{{\\\"a\\\": {}}}\", 3).ok();\n}\nfn g() {}\n";
        let tree = parse(src);
        assert_eq!(tree.fns.len(), 2);
    }

    #[test]
    fn trait_default_methods_are_recorded() {
        let src = "pub trait Sink {\n  fn record(&mut self, e: u8);\n  fn record_with(&mut self, f: impl FnOnce() -> u8) { self.record(f()) }\n}";
        let tree = parse(src);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"record"));
        assert!(names.contains(&"record_with"));
        let rw = tree
            .fns
            .iter()
            .find(|f| f.name == "record_with")
            .expect("rw");
        assert!(rw.body.1 > rw.body.0, "default body captured");
        assert_eq!(rw.impl_type.as_deref(), Some("Sink"));
    }
}
