//! A workspace call graph over the item trees, with may-panic
//! propagation.
//!
//! Nodes are the functions the item-tree parser recovered (free fns,
//! impl methods, trait default methods) across every non-test,
//! non-vendor workspace file. Edges are *name-resolved*: a call site
//! `foo(…)`, `x.foo(…)`, or `Path::foo(…)` produces an edge to **every**
//! workspace function named `foo`. That over-approximates — two
//! unrelated `push` methods alias — but over-approximation is the sound
//! direction for reachability: a path the graph reports may be spurious
//! (then waive it at the panic site with a justification), but a real
//! path is never missed by resolution, only by constructs the parser
//! cannot see (function pointers, trait objects resolved outside the
//! workspace).
//!
//! May-panic seeds are the same constructs `no-panic-paths` bans
//! (`unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`),
//! found in each node's own body; a seed covered by a justified
//! `no-panic-paths` or `panic-reachability` waiver is treated as proven
//! unreachable and does not propagate. Entry points are the unrestricted
//! `pub fn`s of `crates/serve/src/` — the surface a service embedder can
//! actually call.

use crate::item_tree::{FnDef, ItemTree};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// One may-panic construct inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found (`.unwrap()`, `panic!`, …).
    pub what: String,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file the function lives in.
    pub file: String,
    /// Bare name.
    pub name: String,
    /// Module/impl-qualified name.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Unwaived may-panic constructs in this function's own body.
    pub panic_sites: Vec<PanicSite>,
    /// Callee names referenced from the body (deduplicated, sorted).
    pub callees: Vec<String>,
}

/// The assembled graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, sorted by (file, line).
    pub nodes: Vec<FnNode>,
    /// name → node indices bearing that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Total resolved edges (sum over nodes of resolved callee fan-out).
    pub edge_count: usize,
}

/// One reported entry-point → panic-site path.
#[derive(Debug, Clone)]
pub struct PanicPath {
    /// Node index of the panic site's function.
    pub site_fn: usize,
    /// The specific construct.
    pub site: PanicSite,
    /// Node indices from entry point (first) to the panicking function
    /// (last).
    pub path: Vec<usize>,
}

/// Rust keywords and control constructs that look like `ident (` call
/// heads but are not calls.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "impl", "where", "unsafe", "box", "dyn", "ref", "mut", "use", "pub", "mod", "struct", "enum",
    "trait", "type", "const", "static", "break", "continue", "await", "async", "yield", "true",
    "false",
];

/// Macros whose invocation means "this code can panic here".
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// A per-file view the graph builder needs: the parsed tree plus the
/// line ranges justified waivers cover for the two panic rules.
pub struct FileForGraph<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Parsed item tree.
    pub tree: &'a ItemTree,
    /// `(from_line, to_line)` spans covered by justified
    /// `no-panic-paths` / `panic-reachability` waivers.
    pub panic_waiver_lines: Vec<(u32, u32)>,
}

/// Builds the call graph from per-file item trees. Test functions and
/// test-path files are the caller's responsibility to exclude (pass only
/// what should be in the graph).
#[must_use]
pub fn build(files: &[FileForGraph<'_>]) -> CallGraph {
    let mut nodes = Vec::new();
    for f in files {
        for fun in &f.tree.fns {
            if fun.in_test {
                continue;
            }
            let (panic_sites, callees) = scan_body(f, fun);
            nodes.push(FnNode {
                file: f.path.to_string(),
                name: fun.name.clone(),
                qualified: fun.qualified.clone(),
                line: fun.line,
                is_pub: fun.is_pub_unrestricted,
                panic_sites,
                callees,
            });
        }
    }
    nodes.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.clone()).or_default().push(i);
    }
    let edge_count = nodes
        .iter()
        .map(|n| {
            n.callees
                .iter()
                .map(|c| by_name.get(c).map_or(0, Vec::len))
                .sum::<usize>()
        })
        .sum();
    CallGraph {
        nodes,
        by_name,
        edge_count,
    }
}

/// Walks one fn body for panic seeds and callee names.
fn scan_body(f: &FileForGraph<'_>, fun: &FnDef) -> (Vec<PanicSite>, Vec<String>) {
    let tree = f.tree;
    let (start, end) = fun.body;
    let mut sites = Vec::new();
    let mut callees: Vec<String> = Vec::new();
    let waived = |line: u32| {
        f.panic_waiver_lines
            .iter()
            .any(|&(from, to)| line >= from && line <= to)
    };
    let mut ci = start;
    while ci < end {
        let t = tree.tok(ci);
        if t.kind != TokenKind::Ident {
            ci += 1;
            continue;
        }
        let next_is =
            |off: usize, c: char| ci + off < end && tree.tok(ci + off).kind == TokenKind::Punct(c);
        // Macro invocation `ident !`.
        if next_is(1, '!') {
            if PANIC_MACROS.contains(&t.text.as_str()) && !waived(t.line) {
                sites.push(PanicSite {
                    line: t.line,
                    col: t.col,
                    what: format!("{}!", t.text),
                });
            }
            ci += 2;
            continue;
        }
        // Method or path call: `.ident(…)`, `ident(…)`, `::ident(…)`,
        // with an optional turbofish between name and parens.
        let after_name = ci + 1;
        let call_paren = if next_is(1, '(') {
            Some(after_name)
        } else if next_is(1, ':')
            && next_is(2, ':')
            && ci + 3 < end
            && tree.tok(ci + 3).kind == TokenKind::Punct('<')
        {
            // `name::<T>(…)` turbofish.
            let mut depth = 0usize;
            let mut j = ci + 3;
            while j < end {
                match tree.tok(j).kind {
                    TokenKind::Punct('<') => depth += 1,
                    TokenKind::Punct('>') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            (j + 1 < end && tree.tok(j + 1).kind == TokenKind::Punct('(')).then_some(j + 1)
        } else {
            None
        };
        if let Some(_paren) = call_paren {
            let name = t.text.as_str();
            let is_method = ci > start && tree.tok(ci - 1).kind == TokenKind::Punct('.');
            if (name == "unwrap" || name == "expect") && is_method {
                if !waived(t.line) {
                    sites.push(PanicSite {
                        line: t.line,
                        col: t.col,
                        what: format!(".{name}()"),
                    });
                }
            } else if !NON_CALL_IDENTS.contains(&name) && !callees.iter().any(|c| c == name) {
                callees.push(name.to_string());
            }
        }
        ci += 1;
    }
    callees.sort();
    (sites, callees)
}

/// Entry points: unrestricted-`pub` functions in files matching
/// `entry_prefix`.
#[must_use]
pub fn entry_points(graph: &CallGraph, entry_prefix: &str) -> Vec<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_pub && n.file.starts_with(entry_prefix))
        .map(|(i, _)| i)
        .collect()
}

/// Multi-source BFS from the entry points; returns, for every function
/// with unwaived panic sites reachable from some entry point, the
/// shortest entry→…→site path (one [`PanicPath`] per site).
#[must_use]
pub fn panic_paths(graph: &CallGraph, entries: &[usize]) -> Vec<PanicPath> {
    let n = graph.nodes.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &e in entries {
        if !visited[e] {
            visited[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(u) = queue.pop_front() {
        let callees = graph.nodes[u].callees.clone();
        for name in &callees {
            if let Some(targets) = graph.by_name.get(name) {
                for &v in targets {
                    if !visited[v] {
                        visited[v] = true;
                        parent[v] = Some(u);
                        queue.push_back(v);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !visited[i] || node.panic_sites.is_empty() {
            continue;
        }
        let mut path = vec![i];
        let mut cur = i;
        while let Some(p) = parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        for site in &node.panic_sites {
            out.push(PanicPath {
                site_fn: i,
                site: site.clone(),
                path: path.clone(),
            });
        }
    }
    out.sort_by(|a, b| {
        (&graph.nodes[a.site_fn].file, a.site.line, a.site.col).cmp(&(
            &graph.nodes[b.site_fn].file,
            b.site.line,
            b.site.col,
        ))
    });
    out
}

/// Renders a path as `a → b → c` using qualified names.
#[must_use]
pub fn render_path(graph: &CallGraph, path: &[usize]) -> String {
    path.iter()
        .map(|&i| graph.nodes[i].qualified.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_tree::parse;

    fn graph_of(files: &[(&str, &str)]) -> (CallGraph, Vec<ItemTree>) {
        let trees: Vec<ItemTree> = files.iter().map(|(_, src)| parse(src)).collect();
        let views: Vec<FileForGraph<'_>> = files
            .iter()
            .zip(&trees)
            .map(|((path, _), tree)| FileForGraph {
                path,
                tree,
                panic_waiver_lines: Vec::new(),
            })
            .collect();
        (build(&views), trees)
    }

    #[test]
    fn direct_panic_site_is_seeded() {
        let (g, _t) = graph_of(&[(
            "crates/serve/src/lib.rs",
            "pub fn run(x: Option<u8>) -> u8 { x.unwrap() }",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].panic_sites.len(), 1);
        assert_eq!(g.nodes[0].panic_sites[0].what, ".unwrap()");
        let entries = entry_points(&g, "crates/serve/src/");
        let paths = panic_paths(&g, &entries);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].path, vec![0]);
    }

    #[test]
    fn panic_propagates_across_crates() {
        let (g, _t) = graph_of(&[
            (
                "crates/serve/src/engine/core.rs",
                "pub fn serve_entry() { helper_decode(3) }",
            ),
            (
                "crates/coding/src/lib.rs",
                "pub fn helper_decode(n: usize) -> usize { inner(n) }\nfn inner(n: usize) -> usize { if n == 0 { panic!(\"zero\") } else { n } }",
            ),
        ]);
        let entries = entry_points(&g, "crates/serve/src/");
        let paths = panic_paths(&g, &entries);
        assert_eq!(paths.len(), 1, "{paths:?}");
        let rendered = render_path(&g, &paths[0].path);
        assert_eq!(rendered, "serve_entry -> helper_decode -> inner");
        assert_eq!(paths[0].site.what, "panic!");
    }

    #[test]
    fn unreachable_panic_is_not_reported() {
        let (g, _t) = graph_of(&[
            ("crates/serve/src/lib.rs", "pub fn run() -> u8 { 1 }"),
            (
                "crates/coding/src/lib.rs",
                "pub fn never_called() { panic!(\"dead\") }",
            ),
        ]);
        let entries = entry_points(&g, "crates/serve/src/");
        assert!(panic_paths(&g, &entries).is_empty());
    }

    #[test]
    fn waived_site_does_not_seed() {
        let src = "pub fn run(x: Option<u8>) -> u8 { x.unwrap() }";
        let tree = parse(src);
        let views = [FileForGraph {
            path: "crates/serve/src/lib.rs",
            tree: &tree,
            panic_waiver_lines: vec![(1, 1)],
        }];
        let g = build(&views);
        assert!(g.nodes[0].panic_sites.is_empty());
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let (g, _t) = graph_of(&[
            (
                "crates/serve/src/lib.rs",
                "pub struct E;\nimpl E {\n  pub fn step(&self) { self.advance() }\n  fn advance(&self) { unreachable!() }\n}",
            ),
        ]);
        let entries = entry_points(&g, "crates/serve/src/");
        let paths = panic_paths(&g, &entries);
        assert_eq!(paths.len(), 1);
        assert_eq!(render_path(&g, &paths[0].path), "E::step -> E::advance");
    }

    #[test]
    fn turbofish_calls_and_keywords() {
        let (g, _t) = graph_of(&[(
            "crates/serve/src/lib.rs",
            "pub fn f(xs: &[u64]) -> u64 { if xs.len() > 1 { total::<u64>(xs) } else { 0 } }\nfn total<T>(xs: &[T]) -> u64 { xs.len() as u64 }",
        )]);
        let f = &g.nodes[0];
        assert!(f.callees.contains(&"total".to_string()), "{:?}", f.callees);
        assert!(!f.callees.contains(&"if".to_string()));
    }

    #[test]
    fn test_fns_stay_out_of_the_graph() {
        let (g, _t) = graph_of(&[(
            "crates/serve/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap() }\n}",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "live");
    }
}
