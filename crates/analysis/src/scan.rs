//! Workspace file discovery and whole-tree analysis.
//!
//! The walk is deterministic (directory entries are sorted) so
//! diagnostics, the report table, and the unsafe inventory come out
//! byte-identical across runs — the linter holds itself to the
//! invariant it enforces.

use crate::rules::{Finding, UnsafeSite};
use crate::semantic::{analyze_workspace_sources, ApiSurface, SemanticStats};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories scanned for `.rs` files.
const ROOTS: &[&str] = &["src", "crates", "examples", "tests", "vendor"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Paths (workspace-relative prefixes) excluded from live scans: the
/// linter's own fixture corpus contains deliberately-bad snippets.
const SKIP_PREFIXES: &[&str] = &["crates/analysis/tests/fixtures"];

/// Combined result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Findings across all files (token and semantic), waived included.
    pub findings: Vec<Finding>,
    /// Every `unsafe` site, for the audit inventory.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files analyzed.
    pub files: usize,
    /// Call-graph and audit statistics from the semantic pass.
    pub stats: SemanticStats,
    /// API-surface inventory from the semantic pass.
    pub api: ApiSurface,
}

/// Collects all `.rs` files under the scan roots, workspace-relative,
/// sorted.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|p| {
            let s = path_str(p);
            !SKIP_PREFIXES.iter().any(|pre| s.starts_with(pre))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The forward-slash form of a relative path, used for rule scoping.
#[must_use]
pub fn path_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyzes every `.rs` file under `root`: the token pass plus the
/// workspace-level semantic pass.
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let mut sources = Vec::new();
    for rel in collect_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((path_str(&rel), src));
    }
    let analysis = analyze_workspace_sources(&sources);
    Ok(ScanResult {
        findings: analysis.findings,
        unsafe_sites: analysis.unsafe_sites,
        files: analysis.files,
        stats: analysis.stats,
        api: analysis.api,
    })
}
