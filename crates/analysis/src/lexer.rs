//! A hand-rolled Rust lexer, just deep enough for lint-level analysis.
//!
//! The rules in [`crate::rules`] match on *token* streams, never on raw
//! text, so the lexer's one job is to make sure source text that merely
//! *looks* like code — `"HashMap"` inside a string literal, `unwrap()`
//! inside a comment, `//` inside a char literal — never reaches a rule.
//! That requires getting the awkward corners of Rust's lexical grammar
//! right:
//!
//! * line comments and block comments, the latter with **nesting**;
//! * string literals with escapes, **raw strings** with arbitrary `#`
//!   guard runs (`r#"..."#`), byte strings (`b"..."`), raw byte strings
//!   (`br##"..."##`), and C strings (`c"..."`);
//! * char literals vs **lifetimes** (`'a'` vs `'a`), including escaped
//!   quotes (`'\''`) and chars that open comments (`'/'`);
//! * raw identifiers (`r#match`) vs raw strings (`r#"..."`).
//!
//! Everything else (numbers, idents, punctuation) is deliberately
//! coarse: a rule that needs `.partial_cmp(` only has to see the three
//! tokens `.` `partial_cmp` `(` in order.

/// What a [`Token`] is, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\''`, `b'x'`.
    Char,
    /// Numeric literal (integer or float, any base, any suffix).
    Num,
    /// A single punctuation character (`.`, `[`, `!`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:` `:`).
    Punct(char),
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Structural kind.
    pub kind: TokenKind,
    /// The token's full source text (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` for line and block comments.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Character cursor with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes `n` chars, returning the collected text.
    fn take(&mut self, n: usize) -> String {
        let mut out = String::new();
        for _ in 0..n {
            match self.bump() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        out
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (a string
/// or block comment cut off by EOF) consume to end of input rather than
/// erroring: a linter must degrade gracefully on text rustc rejects.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        let token = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == 'r' && raw_guard_len(&cur, 1).is_some() {
            // r"…" or r#"…"# — but r#ident falls through to Ident below.
            let guard = raw_guard_len(&cur, 1).unwrap_or(0);
            lex_raw_string(&mut cur, 1, guard)
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump(); // b
            cur.bump(); // opening '
            lex_char_literal(&mut cur, String::from("b"))
        } else if c == 'b' && cur.peek(1) == Some('"') {
            lex_string(&mut cur, 1)
        } else if c == 'b' && cur.peek(1) == Some('r') && raw_guard_len(&cur, 2).is_some() {
            let guard = raw_guard_len(&cur, 2).unwrap_or(0);
            lex_raw_string(&mut cur, 2, guard)
        } else if c == 'c' && cur.peek(1) == Some('"') {
            lex_string(&mut cur, 1)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur, 0)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else {
            let ch = cur.bump().unwrap_or(c);
            Token {
                kind: TokenKind::Punct(ch),
                text: ch.to_string(),
                line,
                col,
            }
        };
        tokens.push(Token { line, col, ..token });
    }
    tokens
}

/// If the chars at `offset` form `#…#"` (zero or more guards then a
/// quote), returns the guard count — i.e. this is a raw-string opener.
fn raw_guard_len(cur: &Cursor, offset: usize) -> Option<usize> {
    let mut guards = 0;
    loop {
        match cur.peek(offset + guards) {
            Some('#') => guards += 1,
            Some('"') => return Some(guards),
            _ => return None,
        }
    }
}

fn lex_line_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(cur.bump().unwrap_or('\n'));
    }
    Token {
        kind: TokenKind::LineComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Token {
    let mut text = cur.take(2); // "/*"
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push_str(&cur.take(2));
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push_str(&cur.take(2));
            }
            (Some(_), _) => {
                text.push_str(&cur.take(1));
            }
            (None, _) => break,
        }
    }
    Token {
        kind: TokenKind::BlockComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('_'));
    // Raw identifier: `r#match`. (`r#"` was already routed to the raw
    // string path by the caller, so a `#` here is always a raw ident.)
    if text == "r" && cur.peek(0) == Some('#') {
        text.push_str(&cur.take(1));
    }
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(cur.bump().unwrap_or('_'));
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            // Covers 0x/0b prefixes, digits, and type suffixes. An
            // exponent sign (`1e-3`) rides along only when sandwiched
            // between an `e`/`E` and a digit.
            text.push(cur.bump().unwrap_or('0'));
        } else if c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` continues the number; `1.max(…)` and `0..n` do not.
            text.push(cur.bump().unwrap_or('.'));
        } else if (c == '+' || c == '-')
            && text.ends_with(['e', 'E'])
            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
        {
            text.push(cur.bump().unwrap_or('+'));
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Num,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes a `"…"`-delimited string with escape handling; `prefix_len`
/// chars (the `b` of `b"…"` or `c` of `c"…"`) are consumed first.
fn lex_string(cur: &mut Cursor, prefix_len: usize) -> Token {
    let mut text = cur.take(prefix_len + 1); // prefix + opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push_str(&cur.take(2));
        } else if c == '"' {
            text.push_str(&cur.take(1));
            break;
        } else {
            text.push_str(&cur.take(1));
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes `r#"…"#` / `br##"…"##`-style raw strings: `prefix_len` chars of
/// `r`/`br`, then `guards` `#`s, a quote, and content that only ends at
/// a quote followed by the same number of `#`s. No escapes exist.
fn lex_raw_string(cur: &mut Cursor, prefix_len: usize, guards: usize) -> Token {
    let mut text = cur.take(prefix_len + guards + 1);
    while cur.peek(0).is_some() {
        if cur.peek(0) == Some('"') && (0..guards).all(|i| cur.peek(1 + i) == Some('#')) {
            text.push_str(&cur.take(1 + guards));
            break;
        }
        text.push_str(&cur.take(1));
    }
    Token {
        kind: TokenKind::Str,
        text,
        line: 0,
        col: 0,
    }
}

/// Disambiguates what follows a `'`: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> Token {
    debug_assert_eq!(cur.peek(0), Some('\''));
    match (cur.peek(1), cur.peek(2)) {
        // '\…' — escaped char literal ('\'', '\\', '\u{…}', '\n').
        (Some('\\'), _) => {
            let mut text = cur.take(1); // '
            lex_char_body_escaped(cur, &mut text);
            Token {
                kind: TokenKind::Char,
                text,
                line: 0,
                col: 0,
            }
        }
        // 'x' — a one-char literal whose char could also start an ident
        // ('a', '_'). The closing quote right after decides: present →
        // char literal, absent → lifetime ('a, '_).
        (Some(c), Some('\'')) if is_ident_start(c) => {
            cur.bump(); // opening '
            lex_char_literal(cur, String::new())
        }
        (Some(c), _) if is_ident_start(c) => {
            let mut text = cur.take(1); // '
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    text.push(cur.bump().unwrap_or('_'));
                } else {
                    break;
                }
            }
            Token {
                kind: TokenKind::Lifetime,
                text,
                line: 0,
                col: 0,
            }
        }
        // Anything else — '(', '0', '"', '/' — is a char literal.
        _ => {
            cur.bump(); // opening '
            lex_char_literal(cur, String::new())
        }
    }
}

/// Consumes a char-literal body up to and including the closing `'`;
/// the opening `'` (and any `b` prefix, passed via `text`) is already
/// consumed.
fn lex_char_literal(cur: &mut Cursor, mut text: String) -> Token {
    text.push('\'');
    debug_assert_eq!(cur.chars.get(cur.pos - 1), Some(&'\''));
    if cur.peek(0) == Some('\\') {
        lex_char_body_escaped(cur, &mut text);
    } else {
        // One payload char, then the closing quote.
        text.push_str(&cur.take(1));
        if cur.peek(0) == Some('\'') {
            text.push_str(&cur.take(1));
        }
    }
    Token {
        kind: TokenKind::Char,
        text,
        line: 0,
        col: 0,
    }
}

/// Consumes `\…'` — an escape sequence plus the closing quote.
fn lex_char_body_escaped(cur: &mut Cursor, text: &mut String) {
    text.push_str(&cur.take(2)); // backslash + escape head
    if text.ends_with('u') && cur.peek(0) == Some('{') {
        while let Some(c) = cur.peek(0) {
            text.push_str(&cur.take(1));
            if c == '}' {
                break;
            }
        }
    }
    if cur.peek(0) == Some('\'') {
        text.push_str(&cur.take(1));
    }
}

/// Marks every token inside test-only regions: items annotated
/// `#[cfg(test)]` (or any `cfg(…)` whose argument list mentions `test`)
/// and `#[test]` functions. Returns one flag per token.
///
/// The scan is syntactic: after a matching attribute it skips any
/// further attributes, then swallows either a `;`-terminated item or a
/// braced item via brace matching. That covers `mod tests { … }`,
/// annotated functions, and `use` statements — the shapes that occur in
/// practice.
#[must_use]
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut ci = 0;
    while ci < code.len() {
        let start = ci;
        match match_test_attribute(tokens, &code, ci) {
            Some(after_attr) => {
                let end = consume_item(tokens, &code, after_attr);
                for &ti in &code[start..end.min(code.len())] {
                    mask[ti] = true;
                }
                ci = end;
            }
            None => ci += 1,
        }
    }
    mask
}

fn tok_is(t: &Token, p: char) -> bool {
    t.kind == TokenKind::Punct(p)
}

/// If `code[ci..]` starts a `#[cfg(…test…)]` or `#[test]` attribute,
/// returns the code-index just past its closing `]`.
fn match_test_attribute(tokens: &[Token], code: &[usize], ci: usize) -> Option<usize> {
    let tok = |i: usize| -> Option<&Token> { code.get(i).map(|&t| &tokens[t]) };
    if !tok_is(tok(ci)?, '#') || !tok_is(tok(ci + 1)?, '[') {
        return None;
    }
    // Collect the attribute body up to the matching `]`.
    let mut depth = 1usize;
    let mut j = ci + 2;
    let mut body: Vec<&Token> = Vec::new();
    while depth > 0 {
        let t = tok(j)?;
        if tok_is(t, '[') {
            depth += 1;
        } else if tok_is(t, ']') {
            depth -= 1;
        }
        if depth > 0 {
            body.push(t);
        }
        j += 1;
    }
    let is_test = match body.first() {
        Some(t) if t.text == "test" && body.len() == 1 => true,
        // `cfg(test)` / `cfg(any(test, …))` — but a body mentioning
        // `not` (`cfg(not(test))`) guards *live* code, so it never
        // counts as a test region.
        Some(t) if t.text == "cfg" => {
            body.iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "test")
                && !body
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == "not")
        }
        _ => false,
    };
    is_test.then_some(j)
}

/// Consumes attributes then one item starting at code-index `ci`,
/// returning the code-index just past it. An item either ends at the
/// first `;` seen before any `{`, or at the brace matching its first `{`.
fn consume_item(tokens: &[Token], code: &[usize], mut ci: usize) -> usize {
    // Skip stacked attributes (`#[allow(…)]` between the cfg and item).
    while ci + 1 < code.len()
        && tok_is(&tokens[code[ci]], '#')
        && tok_is(&tokens[code[ci + 1]], '[')
    {
        let mut depth = 0usize;
        ci += 1;
        while ci < code.len() {
            let t = &tokens[code[ci]];
            if tok_is(t, '[') {
                depth += 1;
            } else if tok_is(t, ']') {
                depth -= 1;
                if depth == 0 {
                    ci += 1;
                    break;
                }
            }
            ci += 1;
        }
    }
    let mut depth = 0usize;
    while ci < code.len() {
        let t = &tokens[code[ci]];
        if depth == 0 && tok_is(t, ';') {
            return ci + 1;
        }
        if tok_is(t, '{') {
            depth += 1;
        } else if tok_is(t, '}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return ci + 1;
            }
        }
        ci += 1;
    }
    ci
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn line_and_block_comments_swallow_code() {
        assert_eq!(idents("// unwrap() HashMap\nfoo"), vec!["foo"]);
        assert_eq!(idents("/* unwrap() */ bar"), vec!["bar"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ after";
        assert_eq!(idents(src), vec!["after"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = "escaped \" HashMap";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r##"let s = r#"contains "quotes" and HashMap"#;"##;
        assert_eq!(idents(src), vec!["let", "s"]);
        // Two-guard raw string containing a one-guard terminator.
        let src2 = "let s = r##\"has \"# inside\"##; tail";
        assert_eq!(idents(src2), vec!["let", "s", "tail"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(idents(r#"let s = b"unwrap()";"#), vec!["let", "s"]);
        assert_eq!(idents("let s = br#\"unwrap()\"#;"), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = c"unwrap()";"#), vec!["let", "s"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // 'a' is a char; 'a in a generic list is a lifetime.
        let toks = lex("let c = 'a'; fn f<'a>(x: &'a str) {}");
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'a'"]);
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn tricky_char_literals() {
        // A double quote inside a char must not open a string.
        assert_eq!(idents("let q = '\"'; tail"), vec!["let", "q", "tail"]);
        // A slash inside a char must not open a comment.
        assert_eq!(idents("let s = '/'; tail"), vec!["let", "s", "tail"]);
        // Escaped quote.
        assert_eq!(idents(r"let e = '\''; tail"), vec!["let", "e", "tail"]);
        // Unicode escape.
        assert_eq!(idents(r"let u = '\u{1F600}'; t"), vec!["let", "u", "t"]);
        // Byte char.
        assert_eq!(idents("let b = b'x'; tail"), vec!["let", "b", "tail"]);
        // Underscore char vs anonymous lifetime.
        assert_eq!(kinds("'_'")[0], TokenKind::Char);
        assert_eq!(kinds("&'_ str")[1], TokenKind::Lifetime);
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "r#match"]);
    }

    #[test]
    fn numbers_stay_single_tokens() {
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Num]);
        assert_eq!(
            kinds("0..n"),
            vec![
                TokenKind::Num,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Ident
            ]
        );
        // `1.max(2)` — the dot is a method call, not a decimal point.
        assert_eq!(kinds("1.max(2)")[1], TokenKind::Punct('.'));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_region_masks_the_whole_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        let masked: Vec<_> = toks
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(masked.contains(&"unwrap".to_string()));
        // Code outside the module stays unmasked.
        let live: Vec<_> = toks
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(live.contains(&"live".to_string()));
        assert!(live.contains(&"after".to_string()));
    }

    #[test]
    fn cfg_test_with_stacked_attributes_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { u.unwrap() }\nfn live() {}";
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        let unmasked: Vec<_> = toks
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(!unmasked.contains(&"unwrap".to_string()));
        assert!(unmasked.contains(&"live".to_string()));

        // `#[cfg(test)] use foo;` ends at the semicolon.
        let src2 = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let toks2 = lex(src2);
        let mask2 = test_region_mask(&toks2);
        let unmasked2: Vec<_> = toks2
            .iter()
            .zip(&mask2)
            .filter(|(_, &m)| !m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(!unmasked2.contains(&"HashMap".to_string()));
        assert!(unmasked2.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_any_test_counts_as_test() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() { y.unwrap() } }";
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        assert!(toks
            .iter()
            .zip(&mask)
            .all(|(t, &m)| t.text != "unwrap" || m));
    }
}
