//! `s2c2-analysis`: a dependency-free static-analysis pass over the
//! workspace's own source, enforcing the invariants the test suite can
//! only check dynamically.
//!
//! The serve engine guarantees byte-identical event/trace streams
//! across backends and repeat runs. The hazards that historically broke
//! that guarantee — nondeterministic `HashMap` iteration, NaN-unsound
//! `partial_cmp` sorts, wall-clock reads in decision paths — are all
//! *lexically visible*, so this crate catches them before a proptest
//! ever runs:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (nested block comments, raw
//!   strings with `#` guards, char-vs-lifetime disambiguation) so rules
//!   match tokens, never text inside strings or comments;
//! * [`rules`] — the token-rule engine: per-rule path scoping, inline
//!   `// s2c2-allow: <rule> -- <justification>` waivers, and the five
//!   token rules (`no-wall-clock`, `no-unordered-iteration`,
//!   `no-partial-float-order`, `no-panic-paths`, `unsafe-audit`);
//! * [`item_tree`] — a tolerant recursive-descent parser producing the
//!   per-file item tree (modules, fns, enums, structs, impls, matches,
//!   pub items, re-exports) the semantic rules walk;
//! * [`call_graph`] — the workspace call graph with may-panic
//!   propagation from serve's public entry points;
//! * [`semantic`] — the workspace-level rules (`exhaustive-event-match`,
//!   `panic-reachability`, `unordered-float-reduction`, `stale-waiver`,
//!   `api-surface-audit`);
//! * [`scan`] — deterministic workspace walking;
//! * [`report`] — rustc-style diagnostics, the summary table, JSON
//!   diagnostics, and the `results/unsafe_audit.json` /
//!   `results/api_surface.json` inventories.
//!
//! Run it as `cargo run -p s2c2-analysis -- check` (non-zero exit on
//! findings; `--json` for machine-readable diagnostics) or `-- report`
//! (summary table plus call-graph stats); CI gates on `check`.

#![warn(missing_docs)]

pub mod call_graph;
pub mod item_tree;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod semantic;

pub use rules::{analyze_source, FileAnalysis, Finding, Severity, UnsafeSite, WaiverInfo};
pub use scan::{scan_workspace, ScanResult};
pub use semantic::{analyze_workspace_sources, SemanticStats, WorkspaceAnalysis};
