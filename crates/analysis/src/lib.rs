//! `s2c2-analysis`: a dependency-free static-analysis pass over the
//! workspace's own source, enforcing the invariants the test suite can
//! only check dynamically.
//!
//! The serve engine guarantees byte-identical event/trace streams
//! across backends and repeat runs. The hazards that historically broke
//! that guarantee — nondeterministic `HashMap` iteration, NaN-unsound
//! `partial_cmp` sorts, wall-clock reads in decision paths — are all
//! *lexically visible*, so this crate catches them before a proptest
//! ever runs:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (nested block comments, raw
//!   strings with `#` guards, char-vs-lifetime disambiguation) so rules
//!   match tokens, never text inside strings or comments;
//! * [`rules`] — the rule engine: per-rule path scoping, inline
//!   `// s2c2-allow: <rule> -- <justification>` waivers, and the five
//!   workspace rules (`no-wall-clock`, `no-unordered-iteration`,
//!   `no-partial-float-order`, `no-panic-paths`, `unsafe-audit`);
//! * [`scan`] — deterministic workspace walking;
//! * [`report`] — rustc-style diagnostics, the summary table, and the
//!   `results/unsafe_audit.json` inventory.
//!
//! Run it as `cargo run -p s2c2-analysis -- check` (non-zero exit on
//! findings) or `-- report` (summary table); CI gates on `check`.

#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use rules::{analyze_source, FileAnalysis, Finding, Severity, UnsafeSite};
pub use scan::{scan_workspace, ScanResult};
