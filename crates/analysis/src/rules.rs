//! The rule engine: per-rule path scoping, inline waivers, and the five
//! workspace invariants.
//!
//! Rules match on the token stream produced by [`crate::lexer`] — never
//! on raw text — so string/comment contents can't trigger them. Each
//! rule carries its own include/exclude path lists (workspace-relative,
//! `/`-separated prefixes; a full file path is a valid prefix), chosen
//! to encode *where the invariant holds* rather than a global on/off:
//! wall-clock reads are fine in the Threaded backend's measurement
//! sites but not in the decision paths that must replay identically.
//!
//! # Waivers
//!
//! A finding is silenced by a justified waiver comment on the same
//! line, or on the line directly above the offending one:
//!
//! ```text
//! // s2c2-allow: no-panic-paths -- engine invariant: job is resident
//! let job = self.resident.get_mut(&id).expect("resident job");
//! ```
//!
//! The justification after `--` is mandatory; a waiver without one (or
//! naming an unknown rule) is itself a deny-level `waiver-syntax`
//! finding, so waivers can't rot into blanket suppressions.

use crate::lexer::{lex, test_region_mask, Token, TokenKind};

/// Whether a finding gates `check`'s exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails `check` unless waived.
    Deny,
    /// Advisory: reported, never fails the build.
    Warn,
}

/// One rule violation (or advisory) at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that produced this finding (`no-wall-clock`, …).
    pub rule: &'static str,
    /// Deny findings gate CI; Warn findings are advisory.
    pub severity: Severity,
    /// What was matched, specifically.
    pub message: String,
    /// How to fix it (or how to waive it).
    pub help: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// `true` when a justified waiver covers this finding.
    pub waived: bool,
    /// The waiver's justification, when waived.
    pub justification: Option<String>,
}

/// One `unsafe` occurrence, for the machine-readable audit inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Whether a `// SAFETY:` comment is attached (same line or the two
    /// lines above).
    pub has_safety: bool,
    /// The token following `unsafe` (`fn`, `{`, `impl`, …) — a cheap
    /// hint at what kind of unsafe site this is.
    pub head: String,
}

/// Static description of one rule: identity, guidance, and scope.
pub struct RuleSpec {
    /// Stable rule name, used in diagnostics and waiver comments.
    pub name: &'static str,
    /// One-line description for `report`.
    pub summary: &'static str,
    /// Fix guidance appended to every finding.
    pub help: &'static str,
    /// Path prefixes the rule applies to.
    pub include: &'static [&'static str],
    /// Path prefixes carved back out of `include`.
    pub exclude: &'static [&'static str],
    /// Most rules skip `#[cfg(test)]` regions and `tests/` paths; the
    /// unsafe audit deliberately covers them too.
    pub scan_tests: bool,
}

impl RuleSpec {
    /// Does this rule apply to `path` (workspace-relative)?
    #[must_use]
    pub fn applies_to(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p))
            && !self.exclude.iter().any(|p| path.starts_with(p))
    }
}

/// Synthetic rule name for malformed waiver comments.
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// The rule catalog. Order is presentation order in `report`.
#[must_use]
pub fn rules() -> &'static [RuleSpec] {
    &[
        RuleSpec {
            name: "no-wall-clock",
            summary: "wall-clock reads banned in deterministic decision paths",
            help: "decision paths must use the virtual clock; real time is allowed only in \
                   the designated measurement sites (engine/backend.rs, cluster/threaded.rs)",
            include: &[
                "crates/serve/src/",
                "crates/core/src/",
                "crates/telemetry/src/",
            ],
            // The Threaded backend's phase_wall measurement sites are the
            // sanctioned place to read real time.
            exclude: &["crates/serve/src/engine/backend.rs"],
            scan_tests: false,
        },
        RuleSpec {
            name: "no-unordered-iteration",
            summary: "HashMap/HashSet banned in engine and telemetry-emitting paths",
            help: "iteration order feeds the deterministic event/trace streams; use \
                   BTreeMap/BTreeSet instead",
            include: &[
                "crates/serve/src/",
                "crates/telemetry/src/",
                "crates/core/src/",
            ],
            exclude: &[],
            scan_tests: false,
        },
        RuleSpec {
            name: "no-partial-float-order",
            summary: "partial_cmp on float keys banned workspace-wide outside tests",
            help: "partial_cmp().unwrap() panics on NaN and its Option detour invites \
                   asymmetric fallbacks; use f64::total_cmp",
            include: &["crates/", "src/", "examples/", "tests/"],
            exclude: &[],
            scan_tests: false,
        },
        RuleSpec {
            name: "no-panic-paths",
            summary: "unwrap/expect/panic!/unreachable!/indexing flagged in serve non-test code",
            help: "prefer a typed ServeError (or a justified waiver naming the invariant \
                   that makes the panic unreachable)",
            include: &["crates/serve/src/"],
            exclude: &[],
            scan_tests: false,
        },
        RuleSpec {
            name: "unsafe-audit",
            summary: "every unsafe block (vendored shims included) carries a SAFETY: comment",
            help: "document the invariant that makes the block sound in a `// SAFETY:` \
                   comment directly above it",
            include: &["crates/", "src/", "examples/", "tests/", "vendor/"],
            exclude: &[],
            scan_tests: true,
        },
        // --- Semantic rules (implemented in crate::semantic over the
        // item tree and call graph; listed here so waivers naming them
        // parse and `report` documents them). Their scoping lives in
        // crate::semantic, so include/exclude here are documentation.
        RuleSpec {
            name: "exhaustive-event-match",
            summary: "matches over registered engine enums list every variant, no catch-alls",
            help: "list every variant explicitly so adding one forces this site to be revisited",
            include: &[
                "crates/serve/src/",
                "crates/telemetry/src/",
                "crates/core/src/",
                "crates/bench/src/",
            ],
            exclude: &[],
            scan_tests: false,
        },
        RuleSpec {
            name: "panic-reachability",
            summary: "no call path from a serve public entry point reaches a panic site",
            help: "return a typed error along the path, or waive at the site naming the \
                   invariant that makes the panic unreachable",
            include: &["crates/", "src/"],
            exclude: &["crates/analysis/", "vendor/"],
            scan_tests: false,
        },
        RuleSpec {
            name: "unordered-float-reduction",
            summary: "f64 sum/product/fold chains must have provably order-stable sources",
            help: "root the chain in a slice/Vec/BTree (or annotate the binding) so \
                   order-stability is provable",
            include: &["crates/", "src/"],
            exclude: &["vendor/"],
            scan_tests: false,
        },
        RuleSpec {
            name: "stale-waiver",
            summary: "waivers whose covered lines no longer trigger their rule are findings",
            help: "delete the waiver; resurrect it only with a live finding to justify",
            include: &["crates/", "src/", "examples/", "tests/"],
            exclude: &[],
            scan_tests: true,
        },
        RuleSpec {
            name: "api-surface-audit",
            summary: "advisory: unreferenced pub items and unresolved facade re-exports",
            help: "re-export from the facade, demote to pub(crate), or delete",
            include: &["crates/", "src/"],
            exclude: &["vendor/"],
            scan_tests: false,
        },
    ]
}

/// Looks up a rule by name.
#[must_use]
pub fn rule_by_name(name: &str) -> Option<&'static RuleSpec> {
    rules().iter().find(|r| r.name == name)
}

/// Everything the engine learned about one source file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// All findings, waived ones included (callers filter).
    pub findings: Vec<Finding>,
    /// Every `unsafe` occurrence, for the audit inventory.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Parsed waivers with their coverage spans and usage flags. The
    /// semantic pass marks further usage and turns the still-unused
    /// ones into `stale-waiver` findings.
    pub waivers: Vec<WaiverInfo>,
}

/// A parsed `// s2c2-allow: <rule> -- <justification>` comment.
#[derive(Debug, Clone)]
pub struct WaiverInfo {
    /// Rule the waiver names.
    pub rule: String,
    /// Mandatory justification text.
    pub justification: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Last line the waiver covers (its own line, or the next code line
    /// when the comment stands alone above the code).
    pub covers_to: u32,
    /// Whether any finding was silenced by this waiver.
    pub used: bool,
}

const WAIVER_PREFIX: &str = "s2c2-allow:";

/// Extracts waivers from comment tokens; malformed ones become
/// `waiver-syntax` findings.
fn parse_waivers(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) -> Vec<WaiverInfo> {
    let mut waivers = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix(WAIVER_PREFIX) else {
            continue;
        };
        let (rule_part, justification) = match rest.split_once("--") {
            Some((r, j)) => (r.trim(), j.trim().trim_end_matches("*/").trim()),
            None => (rest.trim(), ""),
        };
        let known = rule_by_name(rule_part).is_some();
        if !known || justification.is_empty() {
            let why = if known {
                "missing justification (`-- <why>`)"
            } else {
                "unknown rule name"
            };
            findings.push(Finding {
                rule: WAIVER_SYNTAX,
                severity: Severity::Deny,
                message: format!("malformed waiver: {why}"),
                help: "write `// s2c2-allow: <rule> -- <justification>` with a real reason",
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                waived: false,
                justification: None,
            });
            continue;
        }
        // A standalone waiver line covers the next line that has code;
        // a trailing waiver covers only its own line.
        let has_code_before_on_line = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !t.is_comment());
        let covers_to = if has_code_before_on_line {
            tok.line
        } else {
            tokens
                .iter()
                .filter(|t| !t.is_comment() && t.line > tok.line)
                .map(|t| t.line)
                .min()
                .unwrap_or(tok.line)
        };
        waivers.push(WaiverInfo {
            rule: rule_part.to_string(),
            justification: justification.to_string(),
            line: tok.line,
            covers_to,
            used: false,
        });
    }
    waivers
}

/// Runs every applicable rule over one file.
#[must_use]
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let tokens = lex(src);
    let test_mask = test_region_mask(&tokens);
    let path_is_test = is_test_path(path);

    let mut findings = Vec::new();
    let mut waivers = parse_waivers(&tokens, path, &mut findings);

    // Indices of non-comment tokens, the stream rules actually match on.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let mut unsafe_sites = Vec::new();
    for rule in rules() {
        if !rule.applies_to(path) {
            continue;
        }
        if !rule.scan_tests && path_is_test {
            continue;
        }
        let mut raw = match rule.name {
            "no-wall-clock" => match_wall_clock(&tokens, &code),
            "no-unordered-iteration" => match_unordered(&tokens, &code),
            "no-partial-float-order" => match_partial_cmp(&tokens, &code),
            "no-panic-paths" => match_panic_paths(&tokens, &code),
            "unsafe-audit" => match_unsafe(&tokens, &code, path, &mut unsafe_sites),
            _ => Vec::new(),
        };
        raw.retain(|(idx, _, _)| rule.scan_tests || !test_mask[*idx]);
        for (idx, severity, message) in raw {
            let tok = &tokens[idx];
            let waiver = waivers
                .iter_mut()
                .find(|w| w.rule == rule.name && tok.line >= w.line && tok.line <= w.covers_to);
            let (waived, justification) = match waiver {
                Some(w) => {
                    w.used = true;
                    (true, Some(w.justification.clone()))
                }
                None => (false, None),
            };
            findings.push(Finding {
                rule: rule.name,
                severity,
                message,
                help: rule.help,
                file: path.to_string(),
                line: tok.line,
                col: tok.col,
                waived,
                justification,
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    FileAnalysis {
        findings,
        unsafe_sites,
        waivers,
    }
}

/// Paths that are test-only by construction.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.ends_with("/tests.rs")
}

type RawFinding = (usize, Severity, String);

fn prev_code<'t>(tokens: &'t [Token], code: &[usize], ci: usize) -> Option<&'t Token> {
    ci.checked_sub(1).map(|p| &tokens[code[p]])
}

fn next_code<'t>(tokens: &'t [Token], code: &[usize], ci: usize) -> Option<&'t Token> {
    code.get(ci + 1).map(|&i| &tokens[i])
}

fn match_wall_clock(tokens: &[Token], code: &[usize]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push((
                ti,
                Severity::Deny,
                format!(
                    "wall-clock type `{}` in a deterministic decision path",
                    t.text
                ),
            ));
        } else if t.text == "time" {
            // `std :: time` — the module path itself.
            let colons = ci >= 2
                && prev_code(tokens, code, ci).is_some_and(|p| p.kind == TokenKind::Punct(':'))
                && tokens[code[ci - 2]].kind == TokenKind::Punct(':');
            let from_std = ci >= 3 && tokens[code[ci - 3]].text == "std";
            if colons && from_std {
                out.push((
                    ti,
                    Severity::Deny,
                    "`std::time` import in a deterministic decision path".to_string(),
                ));
            }
        }
    }
    out
}

fn match_unordered(tokens: &[Token], code: &[usize]) -> Vec<RawFinding> {
    code.iter()
        .filter_map(|&ti| {
            let t = &tokens[ti];
            (t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet")).then(
                || {
                    (
                        ti,
                        Severity::Deny,
                        format!(
                            "`{}` in an order-sensitive path (iteration order is \
                             nondeterministic)",
                            t.text
                        ),
                    )
                },
            )
        })
        .collect()
}

fn match_partial_cmp(tokens: &[Token], code: &[usize]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind != TokenKind::Ident || t.text != "partial_cmp" {
            continue;
        }
        // Calls only: `.partial_cmp(` and UFCS `PartialOrd::partial_cmp(`.
        // The mandatory `fn partial_cmp` inside a PartialOrd impl has
        // `fn` before it and is not a call.
        let is_call = prev_code(tokens, code, ci)
            .is_some_and(|p| matches!(p.kind, TokenKind::Punct('.') | TokenKind::Punct(':')));
        if is_call {
            out.push((
                ti,
                Severity::Deny,
                "`partial_cmp` call on float keys".to_string(),
            ));
        }
    }
    out
}

fn match_panic_paths(tokens: &[Token], code: &[usize]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        match t.kind {
            TokenKind::Ident
                if (t.text == "unwrap" || t.text == "expect")
                    && prev_code(tokens, code, ci)
                        .is_some_and(|p| p.kind == TokenKind::Punct('.')) =>
            {
                out.push((
                    ti,
                    Severity::Deny,
                    format!("`.{}()` in non-test serve code", t.text),
                ));
            }
            TokenKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next_code(tokens, code, ci)
                    .is_some_and(|n| n.kind == TokenKind::Punct('!')) =>
            {
                out.push((
                    ti,
                    Severity::Deny,
                    format!("`{}!` in non-test serve code", t.text),
                ));
            }
            TokenKind::Punct('[') => {
                // Postfix indexing: an expression tail directly before
                // the bracket. Type positions (`[f64; 3]`), attributes
                // (`#[…]`), and macro brackets (`vec![…]`) have
                // punctuation there instead.
                let indexes_expr = prev_code(tokens, code, ci).is_some_and(|p| {
                    matches!(
                        p.kind,
                        TokenKind::Ident | TokenKind::Punct(')') | TokenKind::Punct(']')
                    ) && !matches!(
                        p.text.as_str(),
                        // Keyword tails that precede `[…]` array/slice
                        // *expressions*, not indexing.
                        "return" | "in" | "else" | "match" | "if" | "mut" | "dyn" | "as" | "let"
                    )
                });
                if indexes_expr {
                    out.push((
                        ti,
                        Severity::Warn,
                        "direct indexing can panic; prefer get()/first()/split-at APIs".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

fn match_unsafe(
    tokens: &[Token],
    code: &[usize],
    path: &str,
    sites: &mut Vec<UnsafeSite>,
) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        // A SAFETY: comment counts when it trails the same line or sits
        // on one of the two lines directly above (allowing one line of
        // attribute or signature between comment and block).
        let has_safety = tokens.iter().any(|c| {
            c.is_comment() && c.text.contains("SAFETY:") && c.line + 2 >= t.line && c.line <= t.line
        });
        sites.push(UnsafeSite {
            file: path.to_string(),
            line: t.line,
            col: t.col,
            has_safety,
            head: next_code(tokens, code, ci)
                .map(|n| n.text.clone())
                .unwrap_or_default(),
        });
        if !has_safety {
            out.push((
                ti,
                Severity::Deny,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deny(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src)
            .findings
            .into_iter()
            .filter(|f| f.severity == Severity::Deny && !f.waived)
            .collect()
    }

    #[test]
    fn scoping_is_per_rule() {
        let src = "use std::time::Instant;\n";
        // Banned in a decision path…
        assert!(!deny("crates/serve/src/engine/core.rs", src).is_empty());
        // …allowed in the designated measurement site…
        assert!(deny("crates/serve/src/engine/backend.rs", src).is_empty());
        // …and out of scope elsewhere.
        assert!(deny("crates/cluster/src/threaded.rs", src).is_empty());
    }

    #[test]
    fn waiver_on_line_above_silences_and_justifies() {
        let src = "// s2c2-allow: no-unordered-iteration -- keyed lookups only, never iterated\n\
                   use std::collections::HashMap;\n";
        let out = analyze_source("crates/serve/src/engine/core.rs", src);
        let f = out
            .findings
            .iter()
            .find(|f| f.rule == "no-unordered-iteration")
            .expect("finding recorded");
        assert!(f.waived);
        assert_eq!(
            f.justification.as_deref(),
            Some("keyed lookups only, never iterated")
        );
    }

    #[test]
    fn waiver_without_justification_is_a_finding() {
        let src = "// s2c2-allow: no-unordered-iteration\nuse std::collections::HashMap;\n";
        let out = deny("crates/serve/src/engine/core.rs", src);
        assert!(out.iter().any(|f| f.rule == WAIVER_SYNTAX));
        // And the un-justified waiver does not silence the finding.
        assert!(out.iter().any(|f| f.rule == "no-unordered-iteration"));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_silence() {
        let src = "// s2c2-allow: no-wall-clock -- wrong rule\n\
                   use std::collections::HashMap;\n";
        let out = deny("crates/serve/src/engine/core.rs", src);
        assert!(out.iter().any(|f| f.rule == "no-unordered-iteration"));
    }

    #[test]
    fn test_regions_are_skipped_except_for_unsafe_audit() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        assert!(deny("crates/serve/src/event.rs", src).is_empty());
        let src2 = "#[cfg(test)]\nmod tests {\n  fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n";
        let out = analyze_source("crates/coding/src/lib.rs", src2);
        assert!(out.findings.iter().any(|f| f.rule == "unsafe-audit"));
        assert_eq!(out.unsafe_sites.len(), 1);
    }

    #[test]
    fn partial_cmp_definition_is_not_a_call() {
        let src = "impl PartialOrd for X {\n  fn partial_cmp(&self, o: &X) -> Option<Ordering> { Some(self.cmp(o)) }\n}\n";
        assert!(deny("crates/serve/src/event.rs", src).is_empty());
        let bad = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert!(deny("crates/core/src/alloc.rs", bad)
            .iter()
            .any(|f| f.rule == "no-partial-float-order"));
    }

    #[test]
    fn indexing_is_warn_not_deny() {
        let src = "fn f(v: &[f64]) -> f64 { v[0] }\n";
        let out = analyze_source("crates/serve/src/shared_alloc.rs", src);
        let idx: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == "no-panic-paths")
            .collect();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].severity, Severity::Warn);
        // Array types and attributes do not look like indexing.
        let clean =
            "#[derive(Debug)]\nstruct S { xs: [f64; 3] }\nfn g() -> Vec<u8> { vec![0; 4] }\n";
        assert!(analyze_source("crates/serve/src/metrics.rs", clean)
            .findings
            .is_empty());
    }

    #[test]
    fn unsafe_with_safety_comment_is_inventoried_but_clean() {
        let src = "// SAFETY: the slice is checked non-empty above\nlet x = unsafe { p.read() };\n";
        let out = analyze_source("vendor/crossbeam/src/lib.rs", src);
        assert!(out
            .findings
            .iter()
            .all(|f| f.rule != "unsafe-audit" || f.waived));
        assert_eq!(out.unsafe_sites.len(), 1);
        assert!(out.unsafe_sites[0].has_safety);
    }
}
