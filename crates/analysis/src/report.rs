//! Diagnostic rendering: rustc-style findings, the `report` summary
//! table, machine-readable diagnostics for `check --json`, and the
//! unsafe-audit / API-surface inventories.

use crate::rules::{rules, Finding, Severity, UnsafeSite};
use crate::scan::ScanResult;
use crate::semantic::ApiSurface;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders one finding in rustc's `error: … --> file:line:col` shape.
#[must_use]
pub fn render_finding(f: &Finding) -> String {
    let level = match f.severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    };
    format!(
        "{level}[{rule}]: {msg}\n  --> {file}:{line}:{col}\n  help: {help}\n",
        rule = f.rule,
        msg = f.message,
        file = f.file,
        line = f.line,
        col = f.col,
        help = f.help,
    )
}

/// Splits a workspace-relative path into its owning "crate" bucket for
/// the summary table (`crates/serve`, `vendor/rand`, `src`, …).
fn crate_bucket(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.first().copied() {
        Some("crates") | Some("vendor") if parts.len() >= 2 => {
            format!("{}/{}", parts[0], parts[1])
        }
        Some(top) => top.to_string(),
        None => String::new(),
    }
}

/// The `report` subcommand body: a rule × crate matrix of active deny
/// findings plus waived/warn tallies and the unsafe inventory summary.
#[must_use]
pub fn render_report(scan: &ScanResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "s2c2-analysis report — {} files scanned", scan.files);
    let _ = writeln!(out);

    // rule → crate → (active deny, waived, warn)
    let mut matrix: BTreeMap<&str, BTreeMap<String, (usize, usize, usize)>> = BTreeMap::new();
    for f in &scan.findings {
        let cell = matrix
            .entry(f.rule)
            .or_default()
            .entry(crate_bucket(&f.file))
            .or_default();
        match (f.severity, f.waived) {
            (Severity::Deny, false) => cell.0 += 1,
            (_, true) => cell.1 += 1,
            (Severity::Warn, false) => cell.2 += 1,
        }
    }

    let _ = writeln!(
        out,
        "{:<24} {:<18} {:>6} {:>7} {:>6}",
        "rule", "crate", "deny", "waived", "warn"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    for rule in rules() {
        match matrix.get(rule.name) {
            Some(crates) => {
                for (krate, (deny, waived, warn)) in crates {
                    let _ = writeln!(
                        out,
                        "{:<24} {:<18} {:>6} {:>7} {:>6}",
                        rule.name, krate, deny, waived, warn
                    );
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<24} {:<18} {:>6} {:>7} {:>6}",
                    rule.name, "(clean)", 0, 0, 0
                );
            }
        }
    }
    if let Some(crates) = matrix.get(crate::rules::WAIVER_SYNTAX) {
        for (krate, (deny, waived, warn)) in crates {
            let _ = writeln!(
                out,
                "{:<24} {:<18} {:>6} {:>7} {:>6}",
                crate::rules::WAIVER_SYNTAX,
                krate,
                deny,
                waived,
                warn
            );
        }
    }

    let _ = writeln!(out);
    let with_safety = scan.unsafe_sites.iter().filter(|s| s.has_safety).count();
    let _ = writeln!(
        out,
        "unsafe inventory: {} site(s), {} with SAFETY comments (results/unsafe_audit.json)",
        scan.unsafe_sites.len(),
        with_safety
    );

    let st = &scan.stats;
    let _ = writeln!(out);
    let _ = writeln!(out, "call graph:");
    let _ = writeln!(
        out,
        "  {} fn(s), {} edge(s), {} serve entry point(s)",
        st.graph_fns, st.graph_edges, st.entry_points
    );
    let _ = writeln!(
        out,
        "  {} panic site(s), {} reachable from an entry point",
        st.panic_sites, st.reachable_panic_sites
    );
    let _ = writeln!(
        out,
        "  {} registered enum(s), {} non-test match(es) over them",
        st.registered_enums, st.matches_over_registered
    );
    let _ = writeln!(
        out,
        "  {} pub item(s), {} unreferenced, {} re-export(s) checked \
         (results/api_surface.json)",
        st.pub_items, st.unreferenced_pub_items, st.reexports
    );

    let _ = writeln!(out);
    let _ = writeln!(out, "rule catalog:");
    for rule in rules() {
        let _ = writeln!(out, "  {:<24} {}", rule.name, rule.summary);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable unsafe inventory, deterministic field and row
/// order. Hand-rolled JSON: the workspace is registry-free by design.
#[must_use]
pub fn unsafe_audit_json(sites: &[UnsafeSite]) -> String {
    let mut sorted: Vec<&UnsafeSite> = sites.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    let mut out =
        String::from("{\n  \"tool\": \"s2c2-analysis\",\n  \"rule\": \"unsafe-audit\",\n");
    let _ = writeln!(out, "  \"total_sites\": {},", sorted.len());
    let _ = writeln!(
        out,
        "  \"documented_sites\": {},",
        sorted.iter().filter(|s| s.has_safety).count()
    );
    out.push_str("  \"sites\": [");
    for (i, s) in sorted.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"has_safety\": {}, \"head\": \"{}\"}}",
            json_escape(&s.file),
            s.line,
            s.col,
            s.has_safety,
            json_escape(&s.head)
        );
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The machine-readable API-surface inventory, deterministic field and
/// row order (items by file/line, re-exports by file/line).
#[must_use]
pub fn api_surface_json(api: &ApiSurface) -> String {
    let mut items: Vec<_> = api.items.iter().collect();
    items.sort_by(|a, b| (&a.file, a.line, &a.name).cmp(&(&b.file, b.line, &b.name)));
    let mut reexports: Vec<_> = api.reexports.iter().collect();
    reexports.sort_by(|a, b| (&a.file, a.line, &a.name).cmp(&(&b.file, b.line, &b.name)));

    let mut out =
        String::from("{\n  \"tool\": \"s2c2-analysis\",\n  \"rule\": \"api-surface-audit\",\n");
    let _ = writeln!(out, "  \"pub_items\": {},", items.len());
    let _ = writeln!(
        out,
        "  \"unreferenced\": {},",
        items.iter().filter(|i| !i.referenced).count()
    );
    out.push_str("  \"items\": [");
    for (i, it) in items.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"name\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \"line\": {}, \"referenced\": {}}}",
            json_escape(&it.name),
            it.kind,
            json_escape(&it.file),
            it.line,
            it.referenced
        );
    }
    if !items.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"reexports\": [");
    for (i, re) in reexports.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"name\": \"{}\", \"path\": \"{}\", \"file\": \"{}\", \"line\": {}, \"resolved\": {}}}",
            json_escape(&re.name),
            json_escape(&re.path),
            json_escape(&re.file),
            re.line,
            re.resolved
        );
    }
    if !reexports.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Machine-readable diagnostics for `check --json`: summary counts,
/// call-graph stats, and every finding (waived included) in
/// deterministic order.
#[must_use]
pub fn findings_json(scan: &ScanResult) -> String {
    let mut sorted: Vec<&Finding> = scan.findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    let deny = sorted
        .iter()
        .filter(|f| f.severity == Severity::Deny && !f.waived)
        .count();
    let warn = sorted
        .iter()
        .filter(|f| f.severity == Severity::Warn && !f.waived)
        .count();
    let waived = sorted.iter().filter(|f| f.waived).count();

    let mut out = String::from("{\n  \"tool\": \"s2c2-analysis\",\n");
    let _ = writeln!(out, "  \"files\": {},", scan.files);
    let _ = writeln!(
        out,
        "  \"summary\": {{\"deny\": {deny}, \"warn\": {warn}, \"waived\": {waived}}},"
    );
    let st = &scan.stats;
    let _ = writeln!(
        out,
        "  \"call_graph\": {{\"fns\": {}, \"edges\": {}, \"entry_points\": {}, \
         \"panic_sites\": {}, \"reachable_panic_sites\": {}}},",
        st.graph_fns, st.graph_edges, st.entry_points, st.panic_sites, st.reachable_panic_sites
    );
    out.push_str("  \"findings\": [");
    for (i, f) in sorted.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let severity = match f.severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        let justification = match &f.justification {
            Some(j) => format!(", \"justification\": \"{}\"", json_escape(j)),
            None => String::new(),
        };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": \"{}\", \"severity\": \"{severity}\", \"file\": \"{}\", \
             \"line\": {}, \"col\": {}, \"waived\": {}, \"message\": \"{}\"{justification}}}",
            f.rule,
            json_escape(&f.file),
            f.line,
            f.col,
            f.waived,
            json_escape(&f.message)
        );
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_rustc_style() {
        let f = Finding {
            rule: "no-wall-clock",
            severity: Severity::Deny,
            message: "wall-clock type `Instant`".to_string(),
            help: "use the virtual clock",
            file: "crates/serve/src/engine/core.rs".to_string(),
            line: 12,
            col: 9,
            waived: false,
            justification: None,
        };
        let s = render_finding(&f);
        assert!(s.starts_with("error[no-wall-clock]:"));
        assert!(s.contains("--> crates/serve/src/engine/core.rs:12:9"));
    }

    #[test]
    fn unsafe_json_is_sorted_and_escaped() {
        let sites = vec![
            UnsafeSite {
                file: "b.rs".to_string(),
                line: 2,
                col: 1,
                has_safety: true,
                head: "{".to_string(),
            },
            UnsafeSite {
                file: "a.rs".to_string(),
                line: 9,
                col: 3,
                has_safety: false,
                head: "fn".to_string(),
            },
        ];
        let j = unsafe_audit_json(&sites);
        let a = j.find("a.rs").expect("a.rs listed");
        let b = j.find("b.rs").expect("b.rs listed");
        assert!(a < b, "rows sorted by file");
        assert!(j.contains("\"total_sites\": 2"));
        assert!(j.contains("\"documented_sites\": 1"));
    }

    #[test]
    fn empty_inventory_is_valid_json_shape() {
        let j = unsafe_audit_json(&[]);
        assert!(j.contains("\"total_sites\": 0"));
        assert!(j.contains("\"sites\": []"));
    }

    #[test]
    fn api_surface_json_sorts_and_counts() {
        use crate::semantic::{ApiItem, ApiReExport};
        let api = ApiSurface {
            items: vec![
                ApiItem {
                    name: "zeta".to_string(),
                    kind: "fn",
                    file: "b.rs".to_string(),
                    line: 3,
                    referenced: false,
                },
                ApiItem {
                    name: "alpha".to_string(),
                    kind: "struct",
                    file: "a.rs".to_string(),
                    line: 1,
                    referenced: true,
                },
            ],
            reexports: vec![ApiReExport {
                name: "alpha".to_string(),
                path: "crate::a".to_string(),
                file: "lib.rs".to_string(),
                line: 2,
                resolved: true,
            }],
        };
        let j = api_surface_json(&api);
        assert!(j.contains("\"pub_items\": 2"));
        assert!(j.contains("\"unreferenced\": 1"));
        let a = j.find("a.rs").expect("a.rs listed");
        let b = j.find("b.rs").expect("b.rs listed");
        assert!(a < b, "items sorted by file");
        assert!(j.contains("\"resolved\": true"));
    }

    #[test]
    fn findings_json_has_summary_and_sorted_findings() {
        let mk = |file: &str, line: u32, waived: bool| Finding {
            rule: "no-wall-clock",
            severity: Severity::Deny,
            message: "msg \"quoted\"".to_string(),
            help: "h",
            file: file.to_string(),
            line,
            col: 1,
            waived,
            justification: waived.then(|| "why".to_string()),
        };
        let scan = ScanResult {
            findings: vec![mk("b.rs", 1, false), mk("a.rs", 2, true)],
            files: 2,
            ..ScanResult::default()
        };
        let j = findings_json(&scan);
        assert!(j.contains("\"summary\": {\"deny\": 1, \"warn\": 0, \"waived\": 1}"));
        assert!(j.contains("\"call_graph\""));
        assert!(j.contains("msg \\\"quoted\\\""));
        assert!(j.contains("\"justification\": \"why\""));
        let a = j.find("a.rs").expect("a.rs listed");
        let b = j.find("b.rs").expect("b.rs listed");
        assert!(a < b, "findings sorted by file");
    }
}
