//! CLI driver: `check` gates on deny findings, `report` summarizes.

use s2c2_analysis::report::{
    api_surface_json, findings_json, render_finding, render_report, unsafe_audit_json,
};
use s2c2_analysis::rules::Severity;
use s2c2_analysis::scan::scan_workspace;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
s2c2-analysis — workspace linter for determinism, panic-freedom, and float ordering

USAGE:
    cargo run -p s2c2-analysis -- check [--warnings] [--json] [--root <dir>]
    cargo run -p s2c2-analysis -- report [--root <dir>]

SUBCOMMANDS:
    check     print findings rustc-style; exit 1 if any unwaived deny finding
    report    print the rule x crate summary table, call-graph stats, and waiver tallies

OPTIONS:
    --warnings    in check, list advisory (warn) findings individually
    --json        in check, emit machine-readable diagnostics on stdout instead
    --root <dir>  workspace root to scan (default: auto-detected)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut show_warnings = false;
    let mut json = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "report" if cmd.is_none() => {
                cmd = Some(if a == "check" { "check" } else { "report" });
            }
            "--warnings" => show_warnings = true,
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(cmd) = cmd else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    let root = root.unwrap_or_else(workspace_root);
    let scan = match scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // The inventories are refreshed by both subcommands so they can
    // never go stale relative to the tree that was checked.
    let results_dir = root.join("results");
    let unsafe_inventory = unsafe_audit_json(&scan.unsafe_sites);
    let api_inventory = api_surface_json(&scan.api);
    if let Err(e) = std::fs::create_dir_all(&results_dir)
        .and_then(|()| std::fs::write(results_dir.join("unsafe_audit.json"), unsafe_inventory))
        .and_then(|()| std::fs::write(results_dir.join("api_surface.json"), api_inventory))
    {
        eprintln!("error: writing results inventories: {e}");
        return ExitCode::from(2);
    }

    match cmd {
        "report" => {
            print!("{}", render_report(&scan));
            ExitCode::SUCCESS
        }
        _ if json => {
            print!("{}", findings_json(&scan));
            let deny = scan
                .findings
                .iter()
                .any(|f| f.severity == Severity::Deny && !f.waived);
            if deny {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => run_check(&scan, show_warnings),
    }
}

fn run_check(scan: &s2c2_analysis::ScanResult, show_warnings: bool) -> ExitCode {
    let mut deny = 0usize;
    let mut waived = 0usize;
    let mut warn = 0usize;
    let mut warn_by_file: BTreeMap<&str, usize> = BTreeMap::new();

    for f in &scan.findings {
        if f.waived {
            waived += 1;
            continue;
        }
        match f.severity {
            Severity::Deny => {
                deny += 1;
                print!("{}", render_finding(f));
                println!();
            }
            Severity::Warn => {
                warn += 1;
                *warn_by_file.entry(f.file.as_str()).or_default() += 1;
                if show_warnings {
                    print!("{}", render_finding(f));
                    println!();
                }
            }
        }
    }

    if warn > 0 && !show_warnings {
        println!("advisory: {warn} warn-level finding(s) (rerun with --warnings to list):");
        for (file, n) in &warn_by_file {
            println!("  {file}: {n}");
        }
        println!();
    }
    println!(
        "s2c2-analysis: {} file(s), {deny} error(s), {warn} warning(s), {waived} waived",
        scan.files
    );
    if deny > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Locates the workspace root: walk up from the current directory (then
/// from this crate's compile-time location) until a `Cargo.toml`
/// containing `[workspace]` appears.
fn workspace_root() -> PathBuf {
    let starts = [
        std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
        PathBuf::from(env!("CARGO_MANIFEST_DIR")),
    ];
    for start in starts {
        let mut dir: &Path = &start;
        loop {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let text = std::fs::read_to_string(&manifest).unwrap_or_default();
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
            match dir.parent() {
                Some(p) => dir = p,
                None => break,
            }
        }
    }
    PathBuf::from(".")
}
