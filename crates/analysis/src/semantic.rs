//! The semantic pass: workspace-level rules over item trees and the
//! call graph.
//!
//! Where [`crate::rules`] matches token shapes one file at a time, this
//! module sees the whole workspace at once: every enum definition, every
//! `match`, every function and its callees. Five rules live here:
//!
//! * `exhaustive-event-match` — a `match` whose arms name a registered
//!   engine enum may not carry an unguarded catch-all arm outside tests,
//!   and (when it matches the enum directly) must name every variant.
//!   Adding a variant then breaks the build of every interpreter instead
//!   of silently falling through a `_ =>`.
//! * `panic-reachability` — may-panic constructs propagate through the
//!   call graph; any path from a serve-engine public entry point to an
//!   unwaived panic site is a deny finding *at the site*, whichever
//!   crate it lives in.
//! * `unordered-float-reduction` — an `f64` `sum`/`product`/`fold`
//!   whose iterator chain is rooted in a hash container is a deny
//!   finding anywhere; a chain the item tree cannot prove order-stable
//!   is advisory inside the determinism-critical crates.
//! * `stale-waiver` — a justified waiver that no longer covers any
//!   finding of its rule is itself a deny finding, so the waiver
//!   inventory can only shrink.
//! * `api-surface-audit` (advisory) — unrestricted `pub` items no other
//!   workspace file references, plus facade/prelude re-exports that do
//!   not resolve to any workspace item; inventory exported to
//!   `results/api_surface.json`.

use crate::call_graph::{self, CallGraph, FileForGraph};
use crate::item_tree::{self, ItemTree};
use crate::lexer::TokenKind;
use crate::rules::{analyze_source, FileAnalysis, Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Engine enums whose `match` sites must stay exhaustive. Adding an enum
/// here makes every wildcard interpreter arm a finding.
#[must_use]
pub fn registered_enums() -> &'static [&'static str] {
    &[
        "BackendKind",
        "BatchPolicy",
        "EventKind",
        "PipelinePolicy",
        "QueuePolicy",
        "SchedulerMode",
        "TraceEventKind",
    ]
}

/// Path prefixes where event-interpreting matches live (engine core,
/// recovery, exporters, rung counters).
const EXHAUSTIVE_SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/telemetry/src/",
    "crates/core/src/",
    "crates/bench/src/",
];

/// Files that participate in the call graph: workspace crates only —
/// vendored shims keep their own contracts, and the linter does not
/// chase itself.
const GRAPH_SCOPE: &[&str] = &["crates/", "src/"];
const GRAPH_EXCLUDE: &[&str] = &["crates/analysis/", "vendor/"];

/// Serve's public surface is the reachability root set.
const ENTRY_PREFIX: &str = "crates/serve/src/";

/// Crates whose float reductions must be provably order-stable for the
/// advisory tier (deny-tier hash roots are flagged everywhere).
const FLOAT_STRICT_SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/telemetry/src/",
    "crates/core/src/",
];

/// Crates inventoried by the API-surface audit.
const API_SCOPE: &[&str] = &["crates/", "src/"];
const API_EXCLUDE: &[&str] = &["vendor/"];

/// Aggregate numbers for `report` and `check --json`.
#[derive(Debug, Default, Clone)]
pub struct SemanticStats {
    /// Files parsed into item trees.
    pub files: usize,
    /// Functions in the call graph.
    pub graph_fns: usize,
    /// Resolved call edges.
    pub graph_edges: usize,
    /// Serve-engine public entry points.
    pub entry_points: usize,
    /// Unwaived may-panic sites in graph functions.
    pub panic_sites: usize,
    /// Panic sites reachable from an entry point.
    pub reachable_panic_sites: usize,
    /// Registered enums with a parsed definition.
    pub registered_enums: usize,
    /// Non-test matches referencing a registered enum.
    pub matches_over_registered: usize,
    /// Unrestricted `pub` items inventoried.
    pub pub_items: usize,
    /// Inventoried items no other file references.
    pub unreferenced_pub_items: usize,
    /// Re-export leaves checked.
    pub reexports: usize,
}

/// One row of the API-surface inventory.
#[derive(Debug, Clone)]
pub struct ApiItem {
    /// Item name.
    pub name: String,
    /// Item kind tag (`fn`, `struct`, …).
    pub kind: &'static str,
    /// Defining file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Whether any *other* workspace file mentions the name.
    pub referenced: bool,
}

/// One checked re-export leaf.
#[derive(Debug, Clone)]
pub struct ApiReExport {
    /// Re-exported source-side name (`*` for globs).
    pub name: String,
    /// `::`-joined path prefix.
    pub path: String,
    /// File containing the `pub use`.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Whether the leaf resolves to a known workspace item/module/crate.
    pub resolved: bool,
}

/// The API-surface inventory exported to `results/api_surface.json`.
#[derive(Debug, Default)]
pub struct ApiSurface {
    /// All inventoried `pub` items.
    pub items: Vec<ApiItem>,
    /// All checked re-export leaves.
    pub reexports: Vec<ApiReExport>,
}

/// Result of the combined token + semantic analysis of a file set.
#[derive(Debug, Default)]
pub struct WorkspaceAnalysis {
    /// All findings (token and semantic), waived included.
    pub findings: Vec<Finding>,
    /// Unsafe inventory from the token pass.
    pub unsafe_sites: Vec<crate::rules::UnsafeSite>,
    /// Files analyzed.
    pub files: usize,
    /// Call-graph and audit statistics.
    pub stats: SemanticStats,
    /// API-surface inventory.
    pub api: ApiSurface,
}

fn in_scope(path: &str, include: &[&str], exclude: &[&str]) -> bool {
    include.iter().any(|p| path.starts_with(p)) && !exclude.iter().any(|p| path.starts_with(p))
}

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.ends_with("/tests.rs")
}

/// Runs the full pass (token rules, then semantic rules, then the stale
/// waiver sweep) over in-memory `(path, source)` pairs. This is the
/// engine behind [`crate::scan::scan_workspace`]; tests drive it with
/// synthetic workspaces.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze_workspace_sources(files: &[(String, String)]) -> WorkspaceAnalysis {
    let mut out = WorkspaceAnalysis {
        files: files.len(),
        ..WorkspaceAnalysis::default()
    };

    // Token pass (also parses waivers).
    let mut per_file: Vec<FileAnalysis> = files
        .iter()
        .map(|(path, src)| analyze_source(path, src))
        .collect();

    // Item trees for every file.
    let trees: Vec<ItemTree> = files.iter().map(|(_, src)| item_tree::parse(src)).collect();
    out.stats.files = trees.len();

    // Registered enum variant lists, from wherever the definitions live.
    let mut enum_defs: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for (tree, (path, _)) in trees.iter().zip(files) {
        if is_test_path(path) {
            continue;
        }
        for def in &tree.enums {
            if registered_enums().contains(&def.name.as_str()) {
                enum_defs
                    .entry(
                        registered_enums()
                            .iter()
                            .find(|n| **n == def.name)
                            .copied()
                            .unwrap_or(""),
                    )
                    .or_insert_with(|| def.variants.clone());
            }
        }
    }
    out.stats.registered_enums = enum_defs.len();

    // --- Rule 1: exhaustive-event-match --------------------------------
    for ((path, _), tree) in files.iter().zip(&trees) {
        if !in_scope(path, EXHAUSTIVE_SCOPE, &[]) || is_test_path(path) {
            continue;
        }
        for m in &tree.matches {
            if m.in_test {
                continue;
            }
            let refs = item_tree::arm_enum_refs(tree, m, registered_enums());
            if refs.is_empty() {
                continue;
            }
            out.stats.matches_over_registered += 1;
            let mut catch_all_arm = None;
            for arm in &m.arms {
                if item_tree::is_catch_all(tree, arm) {
                    catch_all_arm = Some(arm);
                    break;
                }
            }
            if let Some(arm) = catch_all_arm {
                let (s, _) = arm.pattern;
                let tok = tree.tok(s);
                push_semantic(
                    &mut out.findings,
                    &mut per_file,
                    files,
                    "exhaustive-event-match",
                    Severity::Deny,
                    format!(
                        "catch-all arm in a match over registered enum{} {} — a new \
                         variant would fall through silently",
                        if refs.len() > 1 { "s" } else { "" },
                        refs.join(", ")
                    ),
                    "list every variant explicitly so adding one forces this site to be revisited",
                    path,
                    tok.line,
                    tok.col,
                );
                continue;
            }
            // Direct matches (every arm pattern starts `Enum::…`) also get
            // variant-coverage checking, which is what lets a fixture with
            // a deleted arm fail without ever invoking rustc.
            for name in &refs {
                let Some(variants) = enum_defs.get(name.as_str()) else {
                    continue;
                };
                let direct = m.arms.iter().all(|arm| {
                    let (s, e) = arm.pattern;
                    e > s && {
                        let t = tree.tok(s);
                        t.kind == TokenKind::Ident && registered_enums().contains(&t.text.as_str())
                    }
                });
                if !direct {
                    continue;
                }
                let covered = item_tree::arm_variants(tree, m, name);
                let missing: Vec<&String> =
                    variants.iter().filter(|v| !covered.contains(v)).collect();
                if !missing.is_empty() {
                    push_semantic(
                        &mut out.findings,
                        &mut per_file,
                        files,
                        "exhaustive-event-match",
                        Severity::Deny,
                        format!(
                            "match over {name} misses variant{} {}",
                            if missing.len() > 1 { "s" } else { "" },
                            missing
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        "handle every variant of a registered engine enum explicitly",
                        path,
                        m.line,
                        m.col,
                    );
                }
            }
        }
    }

    // --- Rule 2: panic-reachability ------------------------------------
    {
        let mut views: Vec<FileForGraph<'_>> = Vec::new();
        for ((path, _), tree) in files.iter().zip(&trees) {
            if !in_scope(path, GRAPH_SCOPE, GRAPH_EXCLUDE) || is_test_path(path) {
                continue;
            }
            // Sites justified under no-panic-paths are proven unreachable
            // by their waivers and do not seed; panic-reachability's own
            // waivers are applied at finding time so they count as used.
            let idx = files.iter().position(|(p, _)| p == path).unwrap_or(0);
            let waiver_lines = per_file[idx]
                .waivers
                .iter()
                .filter(|w| w.rule == "no-panic-paths")
                .map(|w| (w.line, w.covers_to))
                .collect();
            views.push(FileForGraph {
                path,
                tree,
                panic_waiver_lines: waiver_lines,
            });
        }
        let graph: CallGraph = call_graph::build(&views);
        let entries = call_graph::entry_points(&graph, ENTRY_PREFIX);
        let paths = call_graph::panic_paths(&graph, &entries);
        out.stats.graph_fns = graph.nodes.len();
        out.stats.graph_edges = graph.edge_count;
        out.stats.entry_points = entries.len();
        out.stats.panic_sites = graph.nodes.iter().map(|n| n.panic_sites.len()).sum();
        out.stats.reachable_panic_sites = paths.len();
        for p in &paths {
            let node = &graph.nodes[p.site_fn];
            let rendered = call_graph::render_path(&graph, &p.path);
            push_semantic(
                &mut out.findings,
                &mut per_file,
                files,
                "panic-reachability",
                Severity::Deny,
                format!(
                    "`{}` reachable from serve entry point: {rendered}",
                    p.site.what
                ),
                "return a typed error along this path, or waive at the site naming the \
                 invariant that makes the panic unreachable",
                &node.file,
                p.site.line,
                p.site.col,
            );
        }
    }

    // --- Rule 3: unordered-float-reduction ------------------------------
    {
        let env = TypeEnv::build(files, &trees);
        for ((path, _), tree) in files.iter().zip(&trees) {
            if !in_scope(path, GRAPH_SCOPE, &["vendor/"]) || is_test_path(path) {
                continue;
            }
            for r in find_reductions(tree, &env) {
                match r.class {
                    Orderedness::Unordered => push_semantic(
                        &mut out.findings,
                        &mut per_file,
                        files,
                        "unordered-float-reduction",
                        Severity::Deny,
                        format!(
                            "f64 `{}` over an unordered source ({}) — accumulation \
                             order is nondeterministic",
                            r.method, r.reason
                        ),
                        "collect into an order-stable container (Vec/BTreeMap) before reducing",
                        path,
                        r.line,
                        r.col,
                    ),
                    Orderedness::Unknown if in_scope(path, FLOAT_STRICT_SCOPE, &[]) => {
                        push_semantic(
                            &mut out.findings,
                            &mut per_file,
                            files,
                            "unordered-float-reduction",
                            Severity::Warn,
                            format!(
                                "f64 `{}` whose source order the item tree cannot prove \
                                 stable ({})",
                                r.method, r.reason
                            ),
                            "root the chain in a slice/Vec/BTree (or annotate the binding) so \
                             order-stability is provable",
                            path,
                            r.line,
                            r.col,
                        );
                    }
                    Orderedness::Ordered | Orderedness::Unknown => {}
                }
            }
        }
    }

    // --- Rule 5 (advisory): api-surface-audit ---------------------------
    {
        // Which files mention which identifiers, and how often — the
        // reference index.
        let mut mentions: BTreeMap<&str, BTreeMap<usize, usize>> = BTreeMap::new();
        for (fi, tree) in trees.iter().enumerate() {
            for &ti in &tree.code {
                let t = &tree.tokens[ti];
                if t.kind == TokenKind::Ident {
                    *mentions
                        .entry(t.text.as_str())
                        .or_default()
                        .entry(fi)
                        .or_insert(0) += 1;
                }
            }
        }
        let mut known_names: BTreeSet<&str> = BTreeSet::new();
        for ((path, _), tree) in files.iter().zip(&trees) {
            if is_test_path(path) {
                continue;
            }
            for item in &tree.pub_items {
                known_names.insert(item.name.as_str());
            }
            for e in &tree.enums {
                for v in &e.variants {
                    known_names.insert(v.as_str());
                }
            }
        }
        for (fi, ((path, _), tree)) in files.iter().zip(&trees).enumerate() {
            if !in_scope(path, API_SCOPE, API_EXCLUDE) || is_test_path(path) {
                continue;
            }
            for item in &tree.pub_items {
                if !item.unrestricted || item.in_test {
                    continue;
                }
                // A mention in another file, or a second mention in the
                // defining file (the first is the definition itself),
                // counts as a reference: the audit flags only items with
                // exactly one occurrence workspace-wide.
                let referenced = mentions
                    .get(item.name.as_str())
                    .is_some_and(|fs| fs.iter().any(|(&f, &n)| f != fi || n >= 2));
                out.api.items.push(ApiItem {
                    name: item.name.clone(),
                    kind: item.kind.tag(),
                    file: path.clone(),
                    line: item.line,
                    referenced,
                });
                if !referenced {
                    push_semantic(
                        &mut out.findings,
                        &mut per_file,
                        files,
                        "api-surface-audit",
                        Severity::Warn,
                        format!(
                            "pub {} `{}` is referenced by no other workspace file",
                            item.kind.tag(),
                            item.name
                        ),
                        "re-export it from the facade, demote it to pub(crate), or delete it",
                        path,
                        item.line,
                        1,
                    );
                }
            }
            for re in &tree.reexports {
                let resolved = re.name == "*"
                    || known_names.contains(re.name.as_str())
                    || re.name.starts_with("s2c2")
                    || matches!(
                        re.name.as_str(),
                        "self" | "crate" | "std" | "core" | "alloc"
                    );
                out.api.reexports.push(ApiReExport {
                    name: re.name.clone(),
                    path: re.path.clone(),
                    file: path.clone(),
                    line: re.line,
                    resolved,
                });
                if !resolved {
                    push_semantic(
                        &mut out.findings,
                        &mut per_file,
                        files,
                        "api-surface-audit",
                        Severity::Warn,
                        format!(
                            "re-export `{}` (from `{}`) resolves to no known workspace item",
                            re.name, re.path
                        ),
                        "fix the path or drop the re-export",
                        path,
                        re.line,
                        1,
                    );
                }
            }
        }
        out.stats.pub_items = out.api.items.len();
        out.stats.unreferenced_pub_items = out.api.items.iter().filter(|i| !i.referenced).count();
        out.stats.reexports = out.api.reexports.len();
    }

    // --- Rule 4: stale-waiver (after every other rule has had its
    // chance to mark waivers used) --------------------------------------
    for ((path, _), fa) in files.iter().zip(&per_file) {
        for w in &fa.waivers {
            if w.used {
                continue;
            }
            out.findings.push(Finding {
                rule: "stale-waiver",
                severity: Severity::Deny,
                message: format!(
                    "waiver for `{}` covers no finding (lines {}..={}) — the hazard it \
                     justified is gone",
                    w.rule, w.line, w.covers_to
                ),
                help: "delete the waiver; resurrect it only with a live finding to justify",
                file: path.clone(),
                line: w.line,
                col: 1,
                waived: false,
                justification: None,
            });
        }
    }

    // Merge the token-pass output.
    for fa in per_file {
        out.findings.extend(fa.findings);
        out.unsafe_sites.extend(fa.unsafe_sites);
    }
    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

/// Records one semantic finding, applying any justified waiver for the
/// rule that covers the finding's line in its file.
#[allow(clippy::too_many_arguments)]
fn push_semantic(
    findings: &mut Vec<Finding>,
    per_file: &mut [FileAnalysis],
    files: &[(String, String)],
    rule: &'static str,
    severity: Severity,
    message: String,
    help: &'static str,
    path: &str,
    line: u32,
    col: u32,
) {
    let mut waived = false;
    let mut justification = None;
    if let Some(idx) = files.iter().position(|(p, _)| p == path) {
        if let Some(w) = per_file[idx]
            .waivers
            .iter_mut()
            .find(|w| w.rule == rule && line >= w.line && line <= w.covers_to)
        {
            w.used = true;
            waived = true;
            justification = Some(w.justification.clone());
        }
    }
    findings.push(Finding {
        rule,
        severity,
        message,
        help,
        file: path.to_string(),
        line,
        col,
        waived,
        justification,
    });
}

// ---------------------------------------------------------------------
// Float-reduction order analysis
// ---------------------------------------------------------------------

/// How much we know about a reduction source's iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orderedness {
    /// Provably order-stable (slice, Vec, BTree, range, …).
    Ordered,
    /// Provably hash-rooted.
    Unordered,
    /// The item tree cannot decide.
    Unknown,
}

/// One float reduction with its classification.
#[derive(Debug)]
pub struct Reduction {
    /// `sum`, `product`, or `fold`.
    pub method: String,
    /// 1-based line of the method name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Verdict.
    pub class: Orderedness,
    /// Human-readable why.
    pub reason: String,
}

/// Workspace-wide type knowledge: struct fields and fn return types.
pub struct TypeEnv {
    /// struct name → (field → type text).
    fields: BTreeMap<String, BTreeMap<String, String>>,
    /// fn name → return-type texts seen under that name.
    returns: BTreeMap<String, Vec<String>>,
}

impl TypeEnv {
    /// Collects struct fields and fn signatures from every non-test file.
    #[must_use]
    pub fn build(files: &[(String, String)], trees: &[ItemTree]) -> Self {
        let mut fields: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        let mut returns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for ((path, _), tree) in files.iter().zip(trees) {
            if is_test_path(path) || path.starts_with("vendor/") {
                continue;
            }
            for s in &tree.structs {
                let entry = fields.entry(s.name.clone()).or_default();
                for (f, ty) in &s.fields {
                    entry.entry(f.clone()).or_insert_with(|| ty.clone());
                }
            }
            for f in &tree.fns {
                if let Some(ret) = &f.ret {
                    returns.entry(f.name.clone()).or_default().push(ret.clone());
                }
            }
        }
        TypeEnv { fields, returns }
    }

    fn field_type(&self, struct_name: &str, field: &str) -> Option<&str> {
        self.fields
            .get(struct_name)
            .and_then(|m| m.get(field))
            .map(String::as_str)
    }

    /// The classification of `name`'s return type — `None` when unknown
    /// or when same-named fns disagree.
    fn return_class(&self, name: &str) -> Option<Orderedness> {
        let rets = self.returns.get(name)?;
        let mut classes: Vec<Orderedness> = rets.iter().map(|t| classify_type(t)).collect();
        classes.dedup();
        match classes.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

/// Classifies a type's iteration order from its text.
#[must_use]
pub fn classify_type(ty: &str) -> Orderedness {
    if ty.contains("HashMap") || ty.contains("HashSet") || ty.contains("hash_map") {
        return Orderedness::Unordered;
    }
    const ORDERED_HEADS: &[&str] = &[
        "Vec",
        "VecDeque",
        "BTreeMap",
        "BTreeSet",
        "String",
        "str",
        "Range",
        "MultiVector",
        "Matrix",
        "f64",
        "usize",
        "u64",
        "u32",
        "i64",
        "i32",
        "Option",
    ];
    let first = ty.split([' ', '<']).find(|s| !s.is_empty()).unwrap_or("");
    if first == "&" || first == "[" || ty.starts_with('[') || ty.starts_with("& [") {
        return Orderedness::Ordered;
    }
    // `& Vec < f64 >` etc: strip leading borrows/mut.
    let stripped = ty.trim_start_matches(['&', ' ']).trim_start_matches("mut ");
    let head = stripped
        .split([' ', '<'])
        .find(|s| !s.is_empty())
        .unwrap_or("");
    if head == "[" || stripped.starts_with('[') {
        return Orderedness::Ordered;
    }
    if ORDERED_HEADS.contains(&head) {
        return Orderedness::Ordered;
    }
    Orderedness::Unknown
}

/// Iterator adapters that preserve their source's order class.
const ORDER_PRESERVING: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "keys",
    "values_mut",
    "into_values",
    "into_keys",
    "drain",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "take",
    "skip",
    "take_while",
    "skip_while",
    "step_by",
    "enumerate",
    "zip",
    "chain",
    "rev",
    "copied",
    "cloned",
    "inspect",
    "peekable",
    "fuse",
    "by_ref",
    "scan",
    "windows",
    "chunks",
    "chunks_exact",
    "split",
    "lines",
    "bytes",
    "chars",
    "as_slice",
    "as_ref",
    "to_vec",
    "slice",
    "range",
    "clone",
    "to_owned",
];

/// Finds and classifies every f64 reduction in a file.
#[must_use]
pub fn find_reductions(tree: &ItemTree, env: &TypeEnv) -> Vec<Reduction> {
    let mut out = Vec::new();
    for f in &tree.fns {
        if f.in_test {
            continue;
        }
        let (start, end) = f.body;
        // Local type facts: annotated let bindings in this body, plus
        // classes inferred from unannotated initializers.
        let locals = collect_local_types(tree, start, end, f, env);
        let mut ci = start;
        while ci < end {
            let t = tree.tok(ci);
            let is_red = t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "sum" | "product" | "fold")
                && ci > start
                && tree.tok(ci - 1).kind == TokenKind::Punct('.');
            if !is_red {
                ci += 1;
                continue;
            }
            let method = t.text.clone();
            let (line, col) = (t.line, t.col);
            let Some((args_start, _args_end)) = call_args(tree, ci, end) else {
                ci += 1;
                continue;
            };
            if !reduction_is_f64(tree, ci, args_start, end, &method, &locals) {
                ci += 1;
                continue;
            }
            if method == "fold" && fold_is_order_insensitive(tree, args_start, end) {
                ci += 1;
                continue;
            }
            let (class, reason) = classify_chain(tree, env, f, &locals, ci - 1);
            out.push(Reduction {
                method,
                line,
                col,
                class,
                reason,
            });
            ci += 1;
        }
    }
    out
}

/// `let name : Type =` annotations in a body, plus fn param types. For
/// unannotated bindings, the initializer expression itself is classified
/// (running forward, so earlier bindings feed later ones) and a
/// synthetic type marker records the verdict.
fn collect_local_types(
    tree: &ItemTree,
    start: usize,
    end: usize,
    f: &crate::item_tree::FnDef,
    env: &TypeEnv,
) -> BTreeMap<String, String> {
    let mut locals: BTreeMap<String, String> = BTreeMap::new();
    for (name, ty) in &f.params {
        locals.insert(name.clone(), ty.clone());
    }
    let mut ci = start;
    while ci + 3 < end {
        if tree.tok(ci).kind == TokenKind::Ident
            && tree.tok(ci).text == "let"
            && tree.tok(ci + 1).kind == TokenKind::Ident
        {
            let mut name_i = ci + 1;
            if tree.tok(name_i).text == "mut" && tree.tok(name_i + 1).kind == TokenKind::Ident {
                name_i += 1;
            }
            if name_i + 1 < end
                && tree.tok(name_i + 1).kind == TokenKind::Punct(':')
                && name_i + 2 < end
                && tree.tok(name_i + 2).kind != TokenKind::Punct(':')
            {
                // Collect type text until `=` or `;` at depth 0.
                let mut j = name_i + 2;
                let mut depth = 0i64;
                let mut ty = String::new();
                while j < end {
                    match tree.tok(j).kind {
                        TokenKind::Punct('<') => depth += 1,
                        TokenKind::Punct('>') => depth -= 1,
                        TokenKind::Punct('=') | TokenKind::Punct(';') if depth <= 0 => break,
                        _ => {}
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&tree.tok(j).text);
                    j += 1;
                }
                locals.insert(tree.tok(name_i).text.clone(), ty);
            } else if name_i + 1 < end && tree.tok(name_i + 1).kind == TokenKind::Punct('=') {
                // `let name = <expr> ;` — classify the initializer by
                // running the backward chain walk from the terminating
                // semicolon.
                let mut j = name_i + 2;
                let mut depth = 0i64;
                while j < end {
                    match tree.tok(j).kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                            depth += 1;
                        }
                        TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                            depth -= 1;
                        }
                        TokenKind::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < end {
                    let (class, _) = classify_chain(tree, env, f, &locals, j);
                    let marker = match class {
                        Orderedness::Ordered => Some("Vec < inferred >"),
                        Orderedness::Unordered => Some("HashMap < inferred >"),
                        Orderedness::Unknown => None,
                    };
                    if let Some(m) = marker {
                        locals.insert(tree.tok(name_i).text.clone(), m.to_string());
                    }
                }
            }
        }
        ci += 1;
    }
    locals
}

/// The argument range of the call whose method name sits at `ci`
/// (skipping an optional turbofish), or `None` if not a call.
fn call_args(tree: &ItemTree, ci: usize, end: usize) -> Option<(usize, usize)> {
    let mut j = ci + 1;
    if j + 1 < end
        && tree.tok(j).kind == TokenKind::Punct(':')
        && tree.tok(j + 1).kind == TokenKind::Punct(':')
    {
        j += 2;
        if j < end && tree.tok(j).kind == TokenKind::Punct('<') {
            let mut depth = 0usize;
            while j < end {
                match tree.tok(j).kind {
                    TokenKind::Punct('<') => depth += 1,
                    TokenKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    (j < end && tree.tok(j).kind == TokenKind::Punct('(')).then(|| {
        let mut depth = 0i64;
        let mut k = j;
        while k < end {
            match tree.tok(k).kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        (j + 1, k)
    })
}

/// Is this reduction provably over f64? Turbofish `::<f64>`, a float
/// fold seed, or an `f64`-annotated binding on the same statement.
fn reduction_is_f64(
    tree: &ItemTree,
    ci: usize,
    args_start: usize,
    end: usize,
    method: &str,
    locals: &BTreeMap<String, String>,
) -> bool {
    // Turbofish between name and parens.
    let mut j = ci + 1;
    if j + 2 < end
        && tree.tok(j).kind == TokenKind::Punct(':')
        && tree.tok(j + 1).kind == TokenKind::Punct(':')
        && tree.tok(j + 2).kind == TokenKind::Punct('<')
    {
        j += 2;
        let mut depth = 0usize;
        while j < end {
            match tree.tok(j).kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident if tree.tok(j).text == "f64" => return true,
                _ => {}
            }
            j += 1;
        }
        return false; // explicit non-f64 turbofish
    }
    if method == "fold" {
        // Float seed: `0.0`, `1.0f64`, `f64::…`, `-1.0`.
        let mut k = args_start;
        if k < end && tree.tok(k).kind == TokenKind::Punct('-') {
            k += 1;
        }
        if k < end {
            let t = tree.tok(k);
            if t.kind == TokenKind::Num && (t.text.contains('.') || t.text.contains("f64")) {
                return true;
            }
            if t.kind == TokenKind::Ident && t.text == "f64" {
                return true;
            }
        }
        return false;
    }
    // Bare `.sum()` / `.product()`: consult the statement's binding
    // annotation (`let total : f64 = …`), scanning back to the `let`.
    let mut k = ci;
    let mut depth = 0i64;
    while k > 0 {
        k -= 1;
        match tree.tok(k).kind {
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth += 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => return false,
            TokenKind::Ident if depth == 0 && tree.tok(k).text == "let" => {
                // `let [mut] name : ty = …`
                let mut name_i = k + 1;
                if tree.tok(name_i).text == "mut" {
                    name_i += 1;
                }
                let name = &tree.tok(name_i).text;
                return locals.get(name).is_some_and(|ty| ty.contains("f64"));
            }
            _ => {}
        }
    }
    false
}

/// `fold` calls whose accumulator is max/min-style are order-insensitive
/// (float max/min are commutative and associative).
fn fold_is_order_insensitive(tree: &ItemTree, args_start: usize, end: usize) -> bool {
    let mut k = args_start;
    let mut depth = 0i64;
    while k < end {
        match tree.tok(k).kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Ident if matches!(tree.tok(k).text.as_str(), "max" | "min") => {
                return true;
            }
            _ => {}
        }
        k += 1;
    }
    false
}

/// Walks the receiver chain backwards from `dot_ci` (the `.` before the
/// reduction name) and classifies its root.
fn classify_chain(
    tree: &ItemTree,
    env: &TypeEnv,
    f: &crate::item_tree::FnDef,
    locals: &BTreeMap<String, String>,
    dot_ci: usize,
) -> (Orderedness, String) {
    let start = f.body.0;
    // Backward walk: produce (root description, segment names applied).
    let mut segments: Vec<String> = Vec::new();
    let mut k = dot_ci; // points at `.`
    loop {
        if k == start {
            return (Orderedness::Unknown, "chain reaches body start".into());
        }
        let prev = k - 1;
        match tree.tok(prev).kind {
            TokenKind::Punct(')') => {
                // Balanced back to the opening paren.
                let mut depth = 0i64;
                let mut j = prev;
                loop {
                    match tree.tok(j).kind {
                        TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                            depth += 1;
                        }
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == start {
                        return (Orderedness::Unknown, "unbalanced chain".into());
                    }
                    j -= 1;
                }
                // A turbofish between callee and parens: skip back over
                // the balanced `< … >` to reach `name ::`.
                let mut callee_i = j; // index of `(`
                let mut turbofish: Option<String> = None;
                if j > start && tree.tok(j - 1).kind == TokenKind::Punct('>') {
                    let mut adepth = 0i64;
                    let mut q = j - 1;
                    loop {
                        match tree.tok(q).kind {
                            TokenKind::Punct('>') => adepth += 1,
                            TokenKind::Punct('<') => {
                                adepth -= 1;
                                if adepth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if q == start {
                            return (Orderedness::Unknown, "opaque chain root".into());
                        }
                        q -= 1;
                    }
                    if q >= start + 2
                        && tree.tok(q - 1).kind == TokenKind::Punct(':')
                        && tree.tok(q - 2).kind == TokenKind::Punct(':')
                    {
                        let text: Vec<String> =
                            (q + 1..j - 1).map(|x| tree.tok(x).text.clone()).collect();
                        turbofish = Some(text.join(" "));
                        callee_i = q - 2; // name sits just before `::`
                    } else {
                        return (Orderedness::Unknown, "opaque chain root".into());
                    }
                }
                // What precedes? A name → call; nothing → group.
                if callee_i > start && tree.tok(callee_i - 1).kind == TokenKind::Ident {
                    let name = tree.tok(callee_i - 1).text.clone();
                    if callee_i - 1 > start && tree.tok(callee_i - 2).kind == TokenKind::Punct('.')
                    {
                        // Method call segment; `collect` keeps its target
                        // type so the forward pass can re-root on it.
                        if name == "collect" {
                            segments.push(format!("collect:{}", turbofish.unwrap_or_default()));
                        } else {
                            segments.push(name);
                        }
                        k = callee_i - 2;
                        continue;
                    }
                    if callee_i >= start + 3
                        && tree.tok(callee_i - 2).kind == TokenKind::Punct(':')
                        && tree.tok(callee_i - 3).kind == TokenKind::Punct(':')
                        && callee_i >= start + 4
                        && tree.tok(callee_i - 4).kind == TokenKind::Ident
                    {
                        // Constructor-style path call: `Vec::new()`,
                        // `BTreeMap::from(...)`.
                        let ty = tree.tok(callee_i - 4).text.clone();
                        let class = classify_type(&ty);
                        if class != Orderedness::Unknown {
                            return apply_segments(
                                env,
                                class,
                                &format!("`{ty}::{name}` constructor"),
                                &segments,
                            );
                        }
                    }
                    // Free/path call root.
                    return finish_root_call(env, &name, &segments);
                }
                // Parenthesized group root: a range literal inside?
                let inner_has_range = (j..prev).any(|x| {
                    tree.tok(x).kind == TokenKind::Punct('.')
                        && x + 1 < prev
                        && tree.tok(x + 1).kind == TokenKind::Punct('.')
                });
                if inner_has_range {
                    return (Orderedness::Ordered, "range source".into());
                }
                return (Orderedness::Unknown, "parenthesized source".into());
            }
            TokenKind::Punct(']') => {
                // Skip back to `[`: either an indexing segment or the
                // body of a bracket macro.
                let mut depth = 0i64;
                let mut j = prev;
                loop {
                    match tree.tok(j).kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == start {
                        return (Orderedness::Unknown, "unbalanced chain".into());
                    }
                    j -= 1;
                }
                // `vec![…]` literal root.
                if j >= start + 2
                    && tree.tok(j - 1).kind == TokenKind::Punct('!')
                    && tree.tok(j - 2).kind == TokenKind::Ident
                    && tree.tok(j - 2).text == "vec"
                {
                    return apply_segments(env, Orderedness::Ordered, "vec! literal", &segments);
                }
                // A bare `[…]` slice literal root (nothing indexable
                // before the bracket).
                let before = (j > start).then(|| tree.tok(j - 1));
                let is_literal = match before {
                    None => true,
                    Some(t) => !matches!(
                        t.kind,
                        TokenKind::Ident | TokenKind::Punct(')') | TokenKind::Punct(']')
                    ),
                };
                if is_literal {
                    return apply_segments(env, Orderedness::Ordered, "slice literal", &segments);
                }
                k = j;
                continue;
            }
            TokenKind::Ident => {
                let name = tree.tok(prev).text.clone();
                if prev > start && tree.tok(prev - 1).kind == TokenKind::Punct('.') {
                    // Field access segment: `self.report.busy_time`…
                    segments.push(format!("field:{name}"));
                    k = prev - 1;
                    continue;
                }
                if prev > start
                    && tree.tok(prev - 1).kind == TokenKind::Punct(':')
                    && prev > start + 1
                    && tree.tok(prev - 2).kind == TokenKind::Punct(':')
                {
                    // Path tail (`std::iter::once` handled via call above;
                    // a bare path root here is opaque).
                    return (Orderedness::Unknown, format!("path root `{name}`"));
                }
                // Variable root.
                return finish_root_var(tree, env, f, locals, &name, &segments);
            }
            _ => {
                return (Orderedness::Unknown, "opaque chain root".into());
            }
        }
    }
}

/// Applies the collected segments to a root class. Known adapters keep
/// the class; an unknown method re-roots the chain on its return type
/// when the workspace fn map resolves it, and otherwise degrades
/// certainty to Unknown.
fn apply_segments(
    env: &TypeEnv,
    root: Orderedness,
    root_desc: &str,
    segments: &[String],
) -> (Orderedness, String) {
    let mut class = root;
    for seg in segments.iter().rev() {
        if seg.starts_with("field:") {
            // Field accesses were already resolved during root lookup
            // when possible; an unresolved one is opaque.
            continue;
        }
        if let Some(target) = seg.strip_prefix("collect:") {
            // `collect::<T>()` re-roots the chain on its target type.
            class = if target.is_empty() {
                Orderedness::Unknown
            } else {
                classify_type(target)
            };
            continue;
        }
        if ORDER_PRESERVING.contains(&seg.as_str()) {
            continue;
        }
        // Unknown method: its return value becomes the new chain root.
        match env.return_class(seg) {
            Some(c) => class = c,
            None if class != Orderedness::Unordered => class = Orderedness::Unknown,
            None => {}
        }
    }
    (class, root_desc.to_string())
}

fn finish_root_call(env: &TypeEnv, name: &str, segments: &[String]) -> (Orderedness, String) {
    if matches!(name, "once" | "repeat" | "empty" | "successors" | "from_fn") {
        return apply_segments(
            env,
            Orderedness::Ordered,
            &format!("iterator constructor `{name}`"),
            segments,
        );
    }
    match env.return_class(name) {
        Some(c) => apply_segments(env, c, &format!("call to `{name}`"), segments),
        None => apply_segments(
            env,
            Orderedness::Unknown,
            &format!("call to `{name}` with unknown return type"),
            segments,
        ),
    }
}

fn finish_root_var(
    tree: &ItemTree,
    env: &TypeEnv,
    f: &crate::item_tree::FnDef,
    locals: &BTreeMap<String, String>,
    name: &str,
    segments: &[String],
) -> (Orderedness, String) {
    let _ = tree;
    // `self.field.…`: resolve fields through the impl type.
    if name == "self" {
        let mut current = f.impl_type.clone();
        let mut last_ty: Option<String> = None;
        for seg in segments.iter().rev() {
            let Some(field) = seg.strip_prefix("field:") else {
                break;
            };
            let Some(ty) = current
                .as_deref()
                .and_then(|s| env.field_type(s, field))
                .map(String::from)
            else {
                return apply_segments(
                    env,
                    Orderedness::Unknown,
                    &format!("unresolved field `self.{field}`"),
                    segments,
                );
            };
            last_ty = Some(ty.clone());
            // Follow into a named struct type for the next field hop.
            current = ty
                .split([' ', '<', '&'])
                .find(|s| !s.is_empty() && s.chars().next().is_some_and(char::is_uppercase))
                .map(String::from);
        }
        if let Some(ty) = last_ty {
            let non_field: Vec<String> = segments
                .iter()
                .filter(|s| !s.starts_with("field:"))
                .cloned()
                .collect();
            return apply_segments(
                env,
                classify_type(&ty),
                &format!("field typed `{ty}`"),
                &non_field,
            );
        }
        return apply_segments(env, Orderedness::Unknown, "bare self", segments);
    }
    match locals.get(name) {
        Some(ty) => {
            let class = classify_type(ty);
            apply_segments(env, class, &format!("`{name}: {ty}`"), segments)
        }
        None => apply_segments(
            env,
            Orderedness::Unknown,
            &format!("`{name}` has no visible type"),
            segments,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> WorkspaceAnalysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        analyze_workspace_sources(&owned)
    }

    fn active(out: &WorkspaceAnalysis, rule: &str) -> Vec<(String, u32)> {
        out.findings
            .iter()
            .filter(|f| f.rule == rule && !f.waived && f.severity == Severity::Deny)
            .map(|f| (f.file.clone(), f.line))
            .collect()
    }

    const EVENT_ENUM: &str =
        "pub enum EventKind {\n  JobArrival,\n  TaskComplete,\n  BatchFlush,\n}\n";

    #[test]
    fn catch_all_over_registered_enum_is_denied() {
        let out = ws(&[
            ("crates/serve/src/event.rs", EVENT_ENUM),
            (
                "crates/serve/src/engine/core.rs",
                "fn handle(k: EventKind) -> u8 {\n  match k {\n    EventKind::JobArrival => 1,\n    _ => 0,\n  }\n}\n",
            ),
        ]);
        let hits = active(&out, "exhaustive-event-match");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 4, "finding anchors at the `_` arm");
    }

    #[test]
    fn missing_variant_without_catch_all_is_denied() {
        // The deleted-arm case: no `_`, but BatchFlush is gone.
        let out = ws(&[
            ("crates/serve/src/event.rs", EVENT_ENUM),
            (
                "crates/serve/src/engine/core.rs",
                "fn handle(k: EventKind) -> u8 {\n  match k {\n    EventKind::JobArrival => 1,\n    EventKind::TaskComplete => 2,\n  }\n}\n",
            ),
        ]);
        let hits = active(&out, "exhaustive-event-match");
        assert_eq!(hits.len(), 1, "{hits:?}");
        let f = out
            .findings
            .iter()
            .find(|f| f.rule == "exhaustive-event-match")
            .expect("finding");
        assert!(f.message.contains("BatchFlush"), "{}", f.message);
    }

    #[test]
    fn exhaustive_match_is_clean_and_tests_are_exempt() {
        let out = ws(&[
            ("crates/serve/src/event.rs", EVENT_ENUM),
            (
                "crates/serve/src/engine/core.rs",
                "fn handle(k: EventKind) -> u8 {\n  match k {\n    EventKind::JobArrival => 1,\n    EventKind::TaskComplete => 2,\n    EventKind::BatchFlush => 3,\n  }\n}\n#[cfg(test)]\nmod tests {\n  fn t(k: EventKind) -> u8 { match k { EventKind::JobArrival => 1, _ => 0 } }\n}\n",
            ),
        ]);
        assert!(active(&out, "exhaustive-event-match").is_empty());
    }

    #[test]
    fn guarded_wildcard_is_not_exempt_but_wrapped_patterns_skip_coverage() {
        // `Some(EventKind::X)`-style arms are not "direct": coverage is
        // rustc's job there, but a catch-all still gets flagged.
        let out = ws(&[
            ("crates/serve/src/event.rs", EVENT_ENUM),
            (
                "crates/serve/src/engine/core.rs",
                "fn f(k: Option<EventKind>) -> u8 {\n  match k {\n    Some(EventKind::JobArrival) => 1,\n    Some(_) => 2,\n    None => 0,\n  }\n}\n",
            ),
        ]);
        // `Some(_)` is not a lone `_` arm; no finding.
        assert!(active(&out, "exhaustive-event-match").is_empty());
    }

    #[test]
    fn panic_reachability_reports_cross_crate_path_and_waiver_silences() {
        let serve = "pub fn serve(x: usize) -> usize { decode(x) }\n";
        let coding_bad = "pub fn decode(x: usize) -> usize { inner(x) }\nfn inner(x: usize) -> usize { x.checked_mul(2).unwrap() }\n";
        let out = ws(&[
            ("crates/serve/src/lib.rs", serve),
            ("crates/coding/src/lib.rs", coding_bad),
        ]);
        let hits = active(&out, "panic-reachability");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "crates/coding/src/lib.rs");

        let coding_waived = "pub fn decode(x: usize) -> usize { inner(x) }\nfn inner(x: usize) -> usize {\n  // s2c2-allow: panic-reachability -- checked_mul cannot overflow: x is a chunk count\n  x.checked_mul(2).unwrap()\n}\n";
        let out2 = ws(&[
            ("crates/serve/src/lib.rs", serve),
            ("crates/coding/src/lib.rs", coding_waived),
        ]);
        assert!(active(&out2, "panic-reachability").is_empty());
        // The waiver is used, so it is not stale.
        assert!(active(&out2, "stale-waiver").is_empty());
    }

    #[test]
    fn unreachable_panic_in_other_crate_is_clean() {
        let out = ws(&[
            ("crates/serve/src/lib.rs", "pub fn serve() -> usize { 1 }\n"),
            (
                "crates/predict/src/lib.rs",
                "pub fn dead_end() { panic!(\"never called from serve\") }\n",
            ),
        ]);
        assert!(active(&out, "panic-reachability").is_empty());
    }

    #[test]
    fn hash_rooted_float_sum_is_denied_everywhere() {
        let out = ws(&[(
            "crates/cluster/src/lib.rs",
            "use std::collections::HashMap;\npub fn total(m: &HashMap<u32, f64>) -> f64 {\n  m.values().sum::<f64>()\n}\n",
        )]);
        let hits = active(&out, "unordered-float-reduction");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn slice_rooted_float_sum_is_clean() {
        let out = ws(&[(
            "crates/serve/src/metrics.rs",
            "pub fn total(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\npub fn weighted(v: &Vec<f64>) -> f64 { v.iter().map(|x| x * 2.0).sum::<f64>() }\n",
        )]);
        assert!(active(&out, "unordered-float-reduction").is_empty());
        // And no advisory either: both roots are provable.
        assert!(!out
            .findings
            .iter()
            .any(|f| f.rule == "unordered-float-reduction"));
    }

    #[test]
    fn fold_max_is_order_insensitive() {
        let out = ws(&[(
            "crates/serve/src/metrics.rs",
            "pub fn peak(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0, f64::max) }\n",
        )]);
        assert!(!out
            .findings
            .iter()
            .any(|f| f.rule == "unordered-float-reduction"));
    }

    #[test]
    fn integer_sums_are_ignored() {
        let out = ws(&[(
            "crates/serve/src/metrics.rs",
            "use std::collections::BTreeMap;\npub fn count(m: &BTreeMap<u32, usize>) -> usize { m.values().sum::<usize>() }\n",
        )]);
        assert!(!out
            .findings
            .iter()
            .any(|f| f.rule == "unordered-float-reduction"));
    }

    #[test]
    fn stale_waiver_is_a_deny_finding() {
        let out = ws(&[(
            "crates/serve/src/engine/core.rs",
            "// s2c2-allow: no-unordered-iteration -- keyed lookups only\nfn f() -> u8 { 1 }\n",
        )]);
        let hits = active(&out, "stale-waiver");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 1);
    }

    #[test]
    fn used_waiver_is_not_stale() {
        let out = ws(&[(
            "crates/serve/src/engine/core.rs",
            "// s2c2-allow: no-unordered-iteration -- keyed lookups only, never iterated\nuse std::collections::HashMap;\nfn f() -> u8 { 1 }\n",
        )]);
        assert!(active(&out, "stale-waiver").is_empty());
    }

    #[test]
    fn api_surface_flags_unreferenced_pub_and_exports_inventory() {
        let out = ws(&[
            (
                "crates/core/src/lib.rs",
                "pub fn used_api() -> u8 { 1 }\npub fn orphan_api() -> u8 { 2 }\n",
            ),
            (
                "crates/serve/src/lib.rs",
                "pub fn serve() -> u8 { used_api() }\n",
            ),
        ]);
        let warns: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.rule == "api-surface-audit")
            .collect();
        assert!(
            warns
                .iter()
                .any(|f| f.message.contains("orphan_api") && f.severity == Severity::Warn),
            "{warns:?}"
        );
        assert!(!warns.iter().any(|f| f.message.contains("used_api")));
        let orphan = out
            .api
            .items
            .iter()
            .find(|i| i.name == "orphan_api")
            .expect("inventoried");
        assert!(!orphan.referenced);
    }

    #[test]
    fn unresolved_reexport_is_advisory() {
        let out = ws(&[(
            "src/lib.rs",
            "pub use s2c2_serve::NoSuchThing;\npub fn f() -> u8 { 1 }\n",
        )]);
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "api-surface-audit" && f.message.contains("NoSuchThing")));
    }

    #[test]
    fn stats_are_populated() {
        let out = ws(&[
            ("crates/serve/src/event.rs", EVENT_ENUM),
            (
                "crates/serve/src/lib.rs",
                "pub fn serve(k: EventKind) -> u8 {\n  match k {\n    EventKind::JobArrival => 1,\n    EventKind::TaskComplete => 2,\n    EventKind::BatchFlush => 3,\n  }\n}\n",
            ),
        ]);
        assert_eq!(out.stats.registered_enums, 1);
        assert_eq!(out.stats.matches_over_registered, 1);
        assert!(out.stats.graph_fns >= 1);
        assert!(out.stats.entry_points >= 1);
    }
}
