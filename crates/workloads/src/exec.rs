//! Shared execution configuration for the distributed workloads.
//!
//! Bundles everything a workload needs to stand up its coded job(s):
//! code parameters, chunking, strategy, predictor, and the cluster spec.
//! Each workload clones the spec per job it creates (forward and backward
//! products run as separate jobs whose speed processes advance
//! independently — a documented simplification; relative latencies across
//! strategies, which is what every figure reports, are unaffected).

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::job::{CodedJob, CodedJobBuilder};
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_core::S2c2Error;
use s2c2_linalg::Matrix;

/// Execution configuration shared by the workloads.
pub struct ExecConfig {
    /// `(n, k)` code parameters (n must match the cluster size).
    pub params: MdsParams,
    /// Chunks per coded partition.
    pub chunks_per_worker: usize,
    /// Scheduling strategy.
    pub strategy: StrategyKind,
    /// Speed prediction source.
    pub predictor: PredictorSource,
    /// Cluster description.
    pub cluster: ClusterSpec,
}

impl ExecConfig {
    /// Convenience constructor with the workspace defaults
    /// (8 chunks/worker, general S²C², last-value predictor).
    #[must_use]
    pub fn new(params: MdsParams, cluster: ClusterSpec) -> Self {
        ExecConfig {
            params,
            chunks_per_worker: 8,
            strategy: StrategyKind::S2c2General,
            predictor: PredictorSource::LastValue,
            cluster,
        }
    }

    /// Sets the strategy.
    #[must_use]
    pub fn strategy(mut self, kind: StrategyKind) -> Self {
        self.strategy = kind;
        self
    }

    /// Sets the predictor source.
    #[must_use]
    pub fn predictor(mut self, predictor: PredictorSource) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the chunk granularity.
    #[must_use]
    pub fn chunks_per_worker(mut self, chunks: usize) -> Self {
        self.chunks_per_worker = chunks;
        self
    }

    /// Builds a coded job over `matrix` with this configuration.
    ///
    /// # Errors
    ///
    /// Propagates job-construction failures.
    pub fn build_job(&self, matrix: Matrix) -> Result<CodedJob, S2c2Error> {
        CodedJobBuilder::new(matrix, self.params)
            .chunks_per_worker(self.chunks_per_worker)
            .strategy(self.strategy)
            .predictor(self.predictor.clone())
            .build(self.cluster.clone())
    }
}

impl Clone for ExecConfig {
    fn clone(&self) -> Self {
        ExecConfig {
            params: self.params,
            chunks_per_worker: self.chunks_per_worker,
            strategy: self.strategy,
            predictor: self.predictor.clone(),
            cluster: self.cluster.clone(),
        }
    }
}

impl std::fmt::Debug for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecConfig")
            .field("params", &self.params)
            .field("chunks_per_worker", &self.chunks_per_worker)
            .field("strategy", &self.strategy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_linalg::Vector;

    #[test]
    fn builds_runnable_job() {
        let cluster = ClusterSpec::builder(6).compute_bound().build();
        let cfg = ExecConfig::new(MdsParams::new(6, 4), cluster)
            .strategy(StrategyKind::MdsCoded)
            .chunks_per_worker(4);
        let a = Matrix::from_fn(96, 4, |r, c| (r + c) as f64);
        let mut job = cfg.build_job(a.clone()).unwrap();
        let x = Vector::filled(4, 1.0);
        let out = job.run_iteration(&x).unwrap();
        s2c2_linalg::assert_slices_close(out.result.as_slice(), a.matvec(&x).as_slice(), 1e-6);
    }

    #[test]
    fn clone_preserves_configuration() {
        let cluster = ClusterSpec::builder(4).build();
        let cfg = ExecConfig::new(MdsParams::new(4, 2), cluster).chunks_per_worker(3);
        let c2 = cfg.clone();
        assert_eq!(c2.chunks_per_worker, 3);
        assert_eq!(c2.params, MdsParams::new(4, 2));
    }
}
