//! Synthetic dataset generators (DESIGN.md substitution table).
//!
//! * [`gisette_like`] replaces the UCI gisette digits data: two Gaussian
//!   class blobs in high dimension, labels ±1. Gradient-descent cost per
//!   iteration depends only on the matrix shape, and the two-blob
//!   structure keeps accuracy meaningfully improvable, which is all the
//!   experiments need.
//! * [`power_law_graph`] replaces the Toronto ranking dataset: a
//!   Barabási–Albert-style preferential-attachment digraph whose heavy
//!   tailed degree distribution matches web-graph ranking inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2c2_linalg::{Matrix, Vector};

/// A labelled binary classification dataset.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Feature matrix, one example per row.
    pub features: Matrix,
    /// Labels in {−1, +1}, one per row.
    pub labels: Vector,
}

/// Generates a gisette-like two-class dataset: `rows` examples of `cols`
/// features drawn from two Gaussian blobs separated along a random
/// direction, labels ±1.
///
/// Uses Box–Muller on the seeded RNG, so generation is deterministic.
///
/// # Panics
///
/// Panics on zero rows/cols.
#[must_use]
pub fn gisette_like(rows: usize, cols: usize, seed: u64) -> Classification {
    assert!(rows > 0 && cols > 0, "dataset must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random unit separation direction.
    let mut dir: Vec<f64> = (0..cols).map(|_| normal(&mut rng)).collect();
    let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    dir.iter_mut().for_each(|x| *x /= norm);

    let mut features = Matrix::zeros(rows, cols);
    let mut labels = Vec::with_capacity(rows);
    for r in 0..rows {
        let label = if r % 2 == 0 { 1.0 } else { -1.0 };
        let shift = 1.5 * label;
        let row = features.row_mut(r);
        for (c, v) in row.iter_mut().enumerate() {
            *v = normal(&mut rng) + shift * dir[c];
        }
        labels.push(label);
    }
    Classification {
        features,
        labels: Vector::from(labels),
    }
}

/// Standard normal sample via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A directed graph as adjacency lists (`edges[u]` = targets of `u`).
#[derive(Debug, Clone)]
pub struct Digraph {
    /// Out-edges per node.
    pub edges: Vec<Vec<usize>>,
}

impl Digraph {
    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.edges.len()
    }

    /// Total edge count.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The PageRank link matrix `M` with damping `d`:
    /// `M[j][i] = d / outdeg(i)` for each edge `i → j` plus the uniform
    /// teleport term handled by the caller. Dangling nodes distribute
    /// uniformly.
    #[must_use]
    pub fn link_matrix(&self, damping: f64) -> Matrix {
        let n = self.nodes();
        let mut m = Matrix::zeros(n, n);
        for (u, outs) in self.edges.iter().enumerate() {
            if outs.is_empty() {
                // Dangling node: rank flows uniformly everywhere.
                let w = damping / n as f64;
                for j in 0..n {
                    m.set(j, u, w);
                }
            } else {
                let w = damping / outs.len() as f64;
                for &v in outs {
                    let cur = m.get(v, u);
                    m.set(v, u, cur + w);
                }
            }
        }
        m
    }

    /// Combinatorial Laplacian `L = D − A` of the *undirected* skeleton
    /// (edge direction dropped), used by the graph-filtering workload.
    #[must_use]
    pub fn laplacian(&self) -> Matrix {
        let n = self.nodes();
        let mut adj = Matrix::zeros(n, n);
        for (u, outs) in self.edges.iter().enumerate() {
            for &v in outs {
                if u != v {
                    adj.set(u, v, 1.0);
                    adj.set(v, u, 1.0);
                }
            }
        }
        let mut lap = Matrix::zeros(n, n);
        for u in 0..n {
            let degree: f64 = (0..n).map(|v| adj.get(u, v)).sum();
            for v in 0..n {
                let a = adj.get(u, v);
                lap.set(u, v, if u == v { degree } else { -a });
            }
        }
        lap
    }
}

/// Generates a preferential-attachment digraph: each new node links to
/// `edges_per_node` existing nodes with probability proportional to their
/// current in-degree (plus one).
///
/// # Panics
///
/// Panics unless `nodes > edges_per_node > 0`.
#[must_use]
pub fn power_law_graph(nodes: usize, edges_per_node: usize, seed: u64) -> Digraph {
    assert!(edges_per_node > 0, "need at least one edge per node");
    assert!(
        nodes > edges_per_node,
        "need more nodes than edges per node"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    // Repeated-target list implements preferential attachment cheaply.
    let mut targets: Vec<usize> = Vec::new();
    // Seed clique among the first edges_per_node + 1 nodes.
    for (u, out) in edges.iter_mut().enumerate().take(edges_per_node + 1) {
        for v in 0..=edges_per_node {
            if u != v {
                out.push(v);
                targets.push(v);
            }
        }
    }
    for (u, out) in edges.iter_mut().enumerate().skip(edges_per_node + 1) {
        let mut chosen: Vec<usize> = Vec::with_capacity(edges_per_node);
        while chosen.len() < edges_per_node {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &v in &chosen {
            out.push(v);
            targets.push(v);
        }
        targets.push(u); // the new node becomes attachable too
    }
    Digraph { edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gisette_like_is_separable_ish() {
        let data = gisette_like(200, 20, 1);
        assert_eq!(data.features.shape(), (200, 20));
        assert_eq!(data.labels.len(), 200);
        // A simple centroid classifier should beat chance easily.
        let mut centroid_pos = Vector::zeros(20);
        let mut centroid_neg = Vector::zeros(20);
        let (mut np, mut nn) = (0.0, 0.0);
        for r in 0..200 {
            let row = Vector::from(data.features.row(r));
            if data.labels[r] > 0.0 {
                centroid_pos += &row;
                np += 1.0;
            } else {
                centroid_neg += &row;
                nn += 1.0;
            }
        }
        centroid_pos.scale(1.0 / np);
        centroid_neg.scale(1.0 / nn);
        let w = &centroid_pos - &centroid_neg;
        let mut correct = 0;
        for r in 0..200 {
            let score = s2c2_linalg::vector::dot_slices(data.features.row(r), w.as_slice());
            if score.signum() == data.labels[r].signum() {
                correct += 1;
            }
        }
        assert!(correct > 160, "centroid classifier got {correct}/200");
    }

    #[test]
    fn gisette_deterministic_per_seed() {
        let a = gisette_like(50, 10, 7);
        let b = gisette_like(50, 10, 7);
        assert_eq!(a.features, b.features);
        let c = gisette_like(50, 10, 8);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn power_law_graph_shape() {
        let g = power_law_graph(100, 3, 2);
        assert_eq!(g.nodes(), 100);
        // Every non-seed node has exactly 3 out-edges.
        for u in 4..100 {
            assert_eq!(g.edges[u].len(), 3, "node {u}");
        }
    }

    #[test]
    fn power_law_degree_is_heavy_tailed() {
        let g = power_law_graph(500, 3, 3);
        let mut indeg = vec![0usize; 500];
        for outs in &g.edges {
            for &v in outs {
                indeg[v] += 1;
            }
        }
        let max = *indeg.iter().max().unwrap();
        let mean = indeg.iter().sum::<usize>() as f64 / 500.0;
        assert!(
            max as f64 > mean * 8.0,
            "hub in-degree {max} should dwarf mean {mean}"
        );
    }

    #[test]
    fn link_matrix_columns_sum_to_damping() {
        let g = power_law_graph(50, 2, 4);
        let m = g.link_matrix(0.85);
        for u in 0..50 {
            let col_sum: f64 = (0..50).map(|v| m.get(v, u)).sum();
            assert!(
                (col_sum - 0.85).abs() < 1e-9,
                "column {u} sums to {col_sum}"
            );
        }
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = power_law_graph(40, 2, 5);
        let lap = g.laplacian();
        for u in 0..40 {
            let s: f64 = (0..40).map(|v| lap.get(u, v)).sum();
            assert!(s.abs() < 1e-9, "row {u} sums to {s}");
        }
        // Constant vector is in the null space.
        let ones = Vector::filled(40, 1.0);
        assert!(lap.matvec(&ones).norm_inf() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "more nodes than edges")]
    fn graph_rejects_tiny() {
        let _ = power_law_graph(2, 3, 0);
    }
}
