//! Distributed PageRank by power iteration.
//!
//! `r ← d·M·r + (1−d)/N` with the link-matrix product executed as a coded
//! job; the damping and teleport are O(N) master-side work. This is the
//! workload behind Fig 7.

use crate::datasets::Digraph;
use crate::exec::ExecConfig;
use s2c2_core::job::CodedJob;
use s2c2_core::S2c2Error;
use s2c2_linalg::Vector;

/// Report of one power iteration.
#[derive(Debug, Clone)]
pub struct PageRankStep {
    /// Simulated latency of the coded product.
    pub latency: f64,
    /// L1 change of the rank vector (convergence measure).
    pub delta: f64,
}

/// Distributed PageRank state.
pub struct DistributedPageRank {
    job: CodedJob,
    rank: Vector,
    teleport: f64,
    nodes: usize,
}

impl DistributedPageRank {
    /// Builds the ranker over `graph` with damping factor `damping`
    /// (typically 0.85). The damping is folded into the encoded link
    /// matrix; the teleport term stays at the master.
    ///
    /// # Errors
    ///
    /// Propagates job-construction failures.
    pub fn new(graph: &Digraph, config: &ExecConfig, damping: f64) -> Result<Self, S2c2Error> {
        if !(0.0..1.0).contains(&damping) {
            return Err(S2c2Error::InvalidConfig(format!(
                "damping {damping} outside [0, 1)"
            )));
        }
        let n = graph.nodes();
        let link = graph.link_matrix(damping);
        Ok(DistributedPageRank {
            job: config.build_job(link)?,
            rank: Vector::filled(n, 1.0 / n as f64),
            teleport: (1.0 - damping) / n as f64,
            nodes: n,
        })
    }

    /// Current rank vector.
    #[must_use]
    pub fn rank(&self) -> &Vector {
        &self.rank
    }

    /// Runs one power iteration through the coded job.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures.
    pub fn step(&mut self) -> Result<PageRankStep, S2c2Error> {
        let out = self.job.run_iteration(&self.rank)?;
        let mut next = out.result;
        for v in next.as_mut_slice() {
            *v += self.teleport;
        }
        let delta = (0..self.nodes)
            .map(|i| (next[i] - self.rank[i]).abs())
            .sum();
        self.rank = next;
        Ok(PageRankStep {
            latency: out.metrics.latency,
            delta,
        })
    }

    /// Iterates until the L1 delta drops below `tol` or `max_iters` is
    /// reached; returns the number of iterations run.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures.
    pub fn run_to_convergence(&mut self, tol: f64, max_iters: usize) -> Result<usize, S2c2Error> {
        for i in 0..max_iters {
            if self.step()?.delta < tol {
                return Ok(i + 1);
            }
        }
        Ok(max_iters)
    }

    /// Total simulated latency so far.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.job.metrics().total_latency()
    }
}

impl std::fmt::Debug for DistributedPageRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedPageRank")
            .field("nodes", &self.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::power_law_graph;
    use s2c2_cluster::ClusterSpec;
    use s2c2_coding::mds::MdsParams;
    use s2c2_core::strategy::StrategyKind;

    fn config(strategy: StrategyKind) -> ExecConfig {
        let cluster = ClusterSpec::builder(12)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(&[4], 0.1)
            .build();
        ExecConfig::new(MdsParams::new(12, 6), cluster)
            .strategy(strategy)
            .chunks_per_worker(6)
    }

    #[test]
    fn converges_to_a_distribution() {
        let graph = power_law_graph(120, 3, 7);
        let mut pr =
            DistributedPageRank::new(&graph, &config(StrategyKind::S2c2General), 0.85).unwrap();
        let iters = pr.run_to_convergence(1e-9, 100).unwrap();
        assert!(iters < 100, "power iteration should converge, took {iters}");
        // Ranks sum to 1 and are positive.
        assert!((pr.rank().sum() - 1.0).abs() < 1e-6);
        assert!(pr.rank().as_slice().iter().all(|&r| r > 0.0));
    }

    #[test]
    fn matches_local_power_iteration() {
        let graph = power_law_graph(80, 2, 9);
        let mut dist =
            DistributedPageRank::new(&graph, &config(StrategyKind::MdsCoded), 0.85).unwrap();
        let _ = dist.run_to_convergence(1e-12, 60).unwrap();

        // Local reference.
        let link = graph.link_matrix(0.85);
        let teleport = 0.15 / 80.0;
        let mut rank = Vector::filled(80, 1.0 / 80.0);
        for _ in 0..60 {
            let mut next = link.matvec(&rank);
            for v in next.as_mut_slice() {
                *v += teleport;
            }
            if rank.max_abs_diff(&next) < 1e-13 {
                rank = next;
                break;
            }
            rank = next;
        }
        s2c2_linalg::assert_slices_close(dist.rank().as_slice(), rank.as_slice(), 1e-6);
    }

    #[test]
    fn hubs_rank_higher_than_leaves() {
        let graph = power_law_graph(150, 3, 11);
        let mut indeg = vec![0usize; 150];
        for outs in &graph.edges {
            for &v in outs {
                indeg[v] += 1;
            }
        }
        let hub = (0..150).max_by_key(|&i| indeg[i]).unwrap();
        let leaf = (0..150).min_by_key(|&i| indeg[i]).unwrap();
        let mut pr =
            DistributedPageRank::new(&graph, &config(StrategyKind::S2c2Basic), 0.85).unwrap();
        let _ = pr.run_to_convergence(1e-9, 80).unwrap();
        assert!(
            pr.rank()[hub] > pr.rank()[leaf] * 3.0,
            "hub {} vs leaf {}",
            pr.rank()[hub],
            pr.rank()[leaf]
        );
    }

    #[test]
    fn invalid_damping_rejected() {
        let graph = power_law_graph(30, 2, 1);
        assert!(DistributedPageRank::new(&graph, &config(StrategyKind::Uncoded), 1.5).is_err());
    }
}
