//! Distributed n-hop graph filtering over the combinatorial Laplacian.
//!
//! §6.3: "Graph filtering operations such as the n-hop filtering
//! operations employ n iterations of matrix-vector multiplication over the
//! combinatorial Laplacian matrix." We implement the general polynomial
//! filter `y = Σ_h c_h · L^h · x`, evaluated Horner-style so each hop is
//! one coded matvec.

use crate::datasets::Digraph;
use crate::exec::ExecConfig;
use s2c2_core::job::CodedJob;
use s2c2_core::S2c2Error;
use s2c2_linalg::Vector;

/// Distributed graph-filter evaluator.
pub struct DistributedGraphFilter {
    job: CodedJob,
    nodes: usize,
}

/// Result of a filter evaluation.
#[derive(Debug, Clone)]
pub struct FilterOutcome {
    /// The filtered signal.
    pub signal: Vector,
    /// Total simulated latency of the hops.
    pub latency: f64,
    /// Number of coded matvec rounds executed.
    pub hops: usize,
}

impl DistributedGraphFilter {
    /// Builds the filter over `graph`'s combinatorial Laplacian.
    ///
    /// # Errors
    ///
    /// Propagates job-construction failures.
    pub fn new(graph: &Digraph, config: &ExecConfig) -> Result<Self, S2c2Error> {
        Ok(DistributedGraphFilter {
            job: config.build_job(graph.laplacian())?,
            nodes: graph.nodes(),
        })
    }

    /// Evaluates the pure n-hop filter `L^hops · x`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures; rejects signals of the
    /// wrong length.
    pub fn n_hop(&mut self, x: &Vector, hops: usize) -> Result<FilterOutcome, S2c2Error> {
        self.polynomial(x, &one_hot_coeff(hops))
    }

    /// Evaluates `y = Σ_h coeffs[h] · L^h · x` (Horner's rule, one coded
    /// matvec per degree).
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures; rejects signals of the
    /// wrong length or empty coefficient lists.
    pub fn polynomial(&mut self, x: &Vector, coeffs: &[f64]) -> Result<FilterOutcome, S2c2Error> {
        if x.len() != self.nodes {
            return Err(S2c2Error::InvalidConfig(format!(
                "signal has {} entries, graph has {}",
                x.len(),
                self.nodes
            )));
        }
        if coeffs.is_empty() {
            return Err(S2c2Error::InvalidConfig("empty filter coefficients".into()));
        }
        // Horner: y = c_0 x + L (c_1 x + L (c_2 x + ...)).
        let degree = coeffs.len() - 1;
        let mut acc = x * *coeffs.last().expect("non-empty");
        let mut latency = 0.0;
        let mut hops = 0;
        for h in (0..degree).rev() {
            let out = self.job.run_iteration(&acc)?;
            latency += out.metrics.latency;
            hops += 1;
            acc = out.result;
            acc.axpy(coeffs[h], x);
        }
        Ok(FilterOutcome {
            signal: acc,
            latency,
            hops,
        })
    }

    /// Total simulated latency so far.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.job.metrics().total_latency()
    }
}

/// Coefficients of the monomial `L^hops`.
fn one_hot_coeff(hops: usize) -> Vec<f64> {
    let mut c = vec![0.0; hops + 1];
    c[hops] = 1.0;
    c
}

impl std::fmt::Debug for DistributedGraphFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedGraphFilter")
            .field("nodes", &self.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::power_law_graph;
    use s2c2_cluster::ClusterSpec;
    use s2c2_coding::mds::MdsParams;
    use s2c2_core::strategy::StrategyKind;

    fn config() -> ExecConfig {
        let cluster = ClusterSpec::builder(8)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(&[2], 0.1)
            .build();
        ExecConfig::new(MdsParams::new(8, 5), cluster)
            .strategy(StrategyKind::S2c2General)
            .chunks_per_worker(5)
    }

    #[test]
    fn two_hop_matches_local() {
        let graph = power_law_graph(60, 2, 3);
        let lap = graph.laplacian();
        let x = Vector::from_fn(60, |i| ((i * 13) % 7) as f64 - 3.0);
        let mut filter = DistributedGraphFilter::new(&graph, &config()).unwrap();
        let out = filter.n_hop(&x, 2).unwrap();
        let expect = lap.matvec(&lap.matvec(&x));
        s2c2_linalg::assert_slices_close(out.signal.as_slice(), expect.as_slice(), 1e-5);
        assert_eq!(out.hops, 2);
        assert!(out.latency > 0.0);
    }

    #[test]
    fn polynomial_filter_matches_local() {
        let graph = power_law_graph(48, 2, 5);
        let lap = graph.laplacian();
        let x = Vector::from_fn(48, |i| (i as f64 * 0.1).sin());
        let coeffs = [1.0, -0.5, 0.25];
        let mut filter = DistributedGraphFilter::new(&graph, &config()).unwrap();
        let out = filter.polynomial(&x, &coeffs).unwrap();
        // Local reference: c0 x + c1 Lx + c2 L^2 x.
        let lx = lap.matvec(&x);
        let llx = lap.matvec(&lx);
        let mut expect = &x * 1.0;
        expect.axpy(-0.5, &lx);
        expect.axpy(0.25, &llx);
        s2c2_linalg::assert_slices_close(out.signal.as_slice(), expect.as_slice(), 1e-5);
    }

    #[test]
    fn zero_hop_is_identity_scaled() {
        let graph = power_law_graph(30, 2, 7);
        let x = Vector::filled(30, 2.0);
        let mut filter = DistributedGraphFilter::new(&graph, &config()).unwrap();
        let out = filter.n_hop(&x, 0).unwrap();
        assert_eq!(out.hops, 0);
        s2c2_linalg::assert_slices_close(out.signal.as_slice(), x.as_slice(), 1e-12);
    }

    #[test]
    fn constant_signal_filtered_to_zero() {
        // L has the constant vector in its null space: one hop kills it.
        let graph = power_law_graph(40, 3, 9);
        let x = Vector::filled(40, 1.0);
        let mut filter = DistributedGraphFilter::new(&graph, &config()).unwrap();
        let out = filter.n_hop(&x, 1).unwrap();
        assert!(out.signal.norm_inf() < 1e-6);
    }

    #[test]
    fn wrong_signal_length_rejected() {
        let graph = power_law_graph(30, 2, 1);
        let mut filter = DistributedGraphFilter::new(&graph, &config()).unwrap();
        assert!(filter.n_hop(&Vector::zeros(29), 1).is_err());
        assert!(filter.polynomial(&Vector::zeros(30), &[]).is_err());
    }
}
