//! Distributed logistic regression by gradient descent.
//!
//! Each iteration runs two coded matvec jobs — the forward margin
//! `u = A·w` and the backward gradient `g = Aᵀ·(σ(u) − ½(y+1))` — plus
//! O(rows) master-side work. This is the workload behind Figs 1, 3 and 6.

use crate::datasets::Classification;
use crate::exec::ExecConfig;
use s2c2_core::job::CodedJob;
use s2c2_core::S2c2Error;
use s2c2_linalg::{Matrix, Vector};

/// Report of a single gradient-descent step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Sum of the two coded jobs' simulated latencies for this iteration.
    pub latency: f64,
    /// Training log-loss after the step.
    pub loss: f64,
    /// Training accuracy after the step (fraction in [0, 1]).
    pub accuracy: f64,
}

/// Distributed logistic regression state.
pub struct DistributedLogReg {
    forward: CodedJob,
    backward: CodedJob,
    features: Matrix,
    /// Labels remapped to {0, 1} for the logistic gradient.
    targets01: Vector,
    labels: Vector,
    weights: Vector,
    learning_rate: f64,
    l2: f64,
}

impl DistributedLogReg {
    /// Builds the distributed trainer: encodes `A` for the forward job and
    /// `Aᵀ` for the backward job under the same execution config.
    ///
    /// # Errors
    ///
    /// Propagates job-construction failures.
    pub fn new(
        data: &Classification,
        config: &ExecConfig,
        learning_rate: f64,
        l2: f64,
    ) -> Result<Self, S2c2Error> {
        let forward = config.build_job(data.features.clone())?;
        let backward = config.build_job(data.features.transpose())?;
        let targets01 = Vector::from_fn(data.labels.len(), |i| {
            if data.labels[i] > 0.0 {
                1.0
            } else {
                0.0
            }
        });
        Ok(DistributedLogReg {
            forward,
            backward,
            features: data.features.clone(),
            targets01,
            labels: data.labels.clone(),
            weights: Vector::zeros(data.features.cols()),
            learning_rate,
            l2,
        })
    }

    /// Current model weights.
    #[must_use]
    pub fn weights(&self) -> &Vector {
        &self.weights
    }

    /// Runs one gradient-descent iteration through the coded jobs.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures.
    pub fn step(&mut self) -> Result<StepReport, S2c2Error> {
        let rows = self.features.rows() as f64;
        // Forward: u = A w  (distributed).
        let fwd = self.forward.run_iteration(&self.weights)?;
        // Residual: sigma(u) - t  (master-side, O(rows)).
        let residual = Vector::from_fn(fwd.result.len(), |i| {
            sigmoid(fwd.result[i]) - self.targets01[i]
        });
        // Backward: grad = A^T residual  (distributed).
        let bwd = self.backward.run_iteration(&residual)?;
        // Update with L2 regularization.
        let mut grad = bwd.result;
        grad.scale(1.0 / rows);
        grad.axpy(self.l2, &self.weights);
        self.weights.axpy(-self.learning_rate, &grad);

        Ok(StepReport {
            latency: fwd.metrics.latency + bwd.metrics.latency,
            loss: self.loss(),
            accuracy: self.accuracy(),
        })
    }

    /// Training log-loss of the current weights (computed locally).
    #[must_use]
    pub fn loss(&self) -> f64 {
        let u = self.features.matvec(&self.weights);
        let mut total = 0.0;
        for i in 0..u.len() {
            let p = sigmoid(u[i]).clamp(1e-12, 1.0 - 1e-12);
            total -= if self.targets01[i] > 0.5 {
                p.ln()
            } else {
                (1.0 - p).ln()
            };
        }
        total / u.len() as f64
    }

    /// Training accuracy of the current weights (computed locally).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let u = self.features.matvec(&self.weights);
        let correct = (0..u.len())
            .filter(|&i| (u[i] >= 0.0) == (self.labels[i] > 0.0))
            .count();
        correct as f64 / u.len() as f64
    }

    /// Total simulated latency accumulated so far across both jobs.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.forward.metrics().total_latency() + self.backward.metrics().total_latency()
    }

    /// Accumulated metrics of the forward (`A·w`) job.
    #[must_use]
    pub fn forward_metrics(&self) -> &s2c2_cluster::JobMetrics {
        self.forward.metrics()
    }

    /// Accumulated metrics of the backward (`Aᵀ·g`) job.
    #[must_use]
    pub fn backward_metrics(&self) -> &s2c2_cluster::JobMetrics {
        self.backward.metrics()
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl std::fmt::Debug for DistributedLogReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedLogReg")
            .field("rows", &self.features.rows())
            .field("cols", &self.features.cols())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gisette_like;
    use s2c2_cluster::ClusterSpec;
    use s2c2_coding::mds::MdsParams;
    use s2c2_core::strategy::StrategyKind;

    fn config(strategy: StrategyKind) -> ExecConfig {
        let cluster = ClusterSpec::builder(6)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(&[1], 0.1)
            .build();
        ExecConfig::new(MdsParams::new(6, 4), cluster)
            .strategy(strategy)
            .chunks_per_worker(6)
    }

    #[test]
    fn training_improves_loss_and_accuracy() {
        let data = gisette_like(120, 10, 11);
        let mut lr =
            DistributedLogReg::new(&data, &config(StrategyKind::S2c2General), 0.5, 1e-4).unwrap();
        let initial_loss = lr.loss();
        let mut report = None;
        for _ in 0..15 {
            report = Some(lr.step().unwrap());
        }
        let report = report.unwrap();
        assert!(
            report.loss < initial_loss * 0.8,
            "loss: {initial_loss} -> {}",
            report.loss
        );
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
        assert!(report.latency > 0.0);
        assert!(lr.total_latency() > 0.0);
    }

    #[test]
    fn distributed_step_matches_local_reference() {
        // One step through the coded path must equal the same step
        // computed locally (decode correctness end-to-end).
        let data = gisette_like(96, 8, 13);
        let mut dist =
            DistributedLogReg::new(&data, &config(StrategyKind::MdsCoded), 0.3, 0.0).unwrap();
        let _ = dist.step().unwrap();

        // Local reference.
        let mut w = Vector::zeros(8);
        let u = data.features.matvec(&w);
        let t = Vector::from_fn(96, |i| if data.labels[i] > 0.0 { 1.0 } else { 0.0 });
        let res = Vector::from_fn(96, |i| sigmoid(u[i]) - t[i]);
        let mut grad = data.features.transpose().matvec(&res);
        grad.scale(1.0 / 96.0);
        w.axpy(-0.3, &grad);

        s2c2_linalg::assert_slices_close(dist.weights().as_slice(), w.as_slice(), 1e-6);
    }

    #[test]
    fn strategies_agree_on_numerics() {
        let data = gisette_like(96, 8, 17);
        let mut reference: Option<Vec<f64>> = None;
        for kind in [
            StrategyKind::Uncoded,
            StrategyKind::MdsCoded,
            StrategyKind::S2c2Basic,
            StrategyKind::S2c2General,
        ] {
            let mut lr = DistributedLogReg::new(&data, &config(kind), 0.4, 1e-3).unwrap();
            for _ in 0..3 {
                let _ = lr.step().unwrap();
            }
            let w = lr.weights().as_slice().to_vec();
            match &reference {
                None => reference = Some(w),
                Some(r) => s2c2_linalg::assert_slices_close(&w, r, 1e-6),
            }
        }
    }
}
