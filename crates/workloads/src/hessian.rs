//! Distributed Hessian computation `Aᵀ·diag(w)·A` on polynomial codes
//! (§6.3, Fig 12).
//!
//! For logistic regression the Newton-step Hessian weights are
//! `w_i = σ(aᵢ·x)·(1 − σ(aᵢ·x))`; this module computes both the weights
//! (locally — O(rows·cols), not the bottleneck) and the coded bilinear
//! product (distributed, the bottleneck the paper measures).

use crate::exec::ExecConfig;
use s2c2_cluster::{ClusterSim, JobMetrics};
use s2c2_coding::polynomial::PolyParams;
use s2c2_core::strategy::poly::{BilinearStrategy, PolyConventional, PolyS2c2};
use s2c2_core::S2c2Error;
use s2c2_linalg::{Matrix, Vector};

/// Which polynomial scheduler to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyStrategyKind {
    /// Conventional polynomial coded computing (fastest `a·b` win).
    Conventional,
    /// S²C²-scheduled polynomial coded computing.
    S2c2,
}

/// Result of one Hessian evaluation.
#[derive(Debug, Clone)]
pub struct HessianOutcome {
    /// The decoded `Aᵀ·diag(w)·A` matrix.
    pub hessian: Matrix,
    /// Simulated latency of the round.
    pub latency: f64,
}

/// Distributed Hessian evaluator.
pub struct DistributedHessian {
    strategy: Box<dyn BilinearStrategy>,
    sim: ClusterSim,
    features: Matrix,
    metrics: JobMetrics,
    iteration: usize,
}

impl DistributedHessian {
    /// Builds the evaluator over feature matrix `a` with an
    /// `(n, grid × grid)` polynomial code.
    ///
    /// # Errors
    ///
    /// Propagates code/shape failures.
    pub fn new(
        a: &Matrix,
        config: &ExecConfig,
        grid: usize,
        kind: PolyStrategyKind,
    ) -> Result<Self, S2c2Error> {
        let n = config.cluster.n();
        let params = PolyParams {
            n,
            a: grid,
            b: grid,
        };
        if params.a * params.b > n {
            return Err(S2c2Error::InvalidConfig(format!(
                "grid {grid}x{grid} needs more than {n} workers"
            )));
        }
        let a_t = a.transpose();
        let strategy: Box<dyn BilinearStrategy> = match kind {
            PolyStrategyKind::Conventional => Box::new(PolyConventional::new(
                &a_t,
                a,
                params,
                config.chunks_per_worker,
            )?),
            PolyStrategyKind::S2c2 => Box::new(PolyS2c2::new(
                &a_t,
                a,
                params,
                config.chunks_per_worker,
                &config.predictor,
            )?),
        };
        Ok(DistributedHessian {
            strategy,
            sim: ClusterSim::new(config.cluster.clone()),
            features: a.clone(),
            metrics: JobMetrics::new(),
            iteration: 0,
        })
    }

    /// Computes the logistic Hessian weights at model `x` (locally).
    #[must_use]
    pub fn logistic_weights(&self, x: &Vector) -> Vector {
        let u = self.features.matvec(x);
        Vector::from_fn(u.len(), |i| {
            let s = 1.0 / (1.0 + (-u[i]).exp());
            (s * (1.0 - s)).max(1e-12)
        })
    }

    /// Evaluates `Aᵀ·diag(w)·A` through the coded cluster.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures; rejects weight vectors of
    /// the wrong length.
    pub fn compute(&mut self, w: &Vector) -> Result<HessianOutcome, S2c2Error> {
        if w.len() != self.features.rows() {
            return Err(S2c2Error::InvalidConfig(format!(
                "weights have {} entries, features have {} rows",
                w.len(),
                self.features.rows()
            )));
        }
        let out = self
            .strategy
            .run_iteration(&mut self.sim, self.iteration, w)?;
        self.iteration += 1;
        self.metrics.push(out.metrics.clone());
        Ok(HessianOutcome {
            hessian: out.result,
            latency: out.metrics.latency,
        })
    }

    /// Accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Strategy display name.
    #[must_use]
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }
}

impl std::fmt::Debug for DistributedHessian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedHessian")
            .field("strategy", &self.strategy.name())
            .field("iteration", &self.iteration)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gisette_like;
    use s2c2_cluster::ClusterSpec;
    use s2c2_coding::mds::MdsParams;
    use s2c2_core::speed_tracker::PredictorSource;
    use s2c2_core::strategy::StrategyKind;

    fn config() -> ExecConfig {
        let cluster = ClusterSpec::builder(12)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(&[6], 0.1)
            .build();
        // MdsParams here only satisfy ExecConfig; the Hessian uses the
        // polynomial grid.
        ExecConfig::new(MdsParams::new(12, 9), cluster)
            .strategy(StrategyKind::S2c2General)
            .predictor(PredictorSource::LastValue)
            .chunks_per_worker(12)
    }

    fn local_hessian(a: &Matrix, w: &Vector) -> Matrix {
        let mut scaled = a.clone();
        for r in 0..a.rows() {
            let f = w.as_slice()[r];
            for v in scaled.row_mut(r) {
                *v *= f;
            }
        }
        a.transpose().matmul(&scaled)
    }

    #[test]
    fn conventional_matches_local() {
        let data = gisette_like(48, 36, 41);
        let mut h =
            DistributedHessian::new(&data.features, &config(), 3, PolyStrategyKind::Conventional)
                .unwrap();
        let w = Vector::filled(48, 0.25);
        let out = h.compute(&w).unwrap();
        let expect = local_hessian(&data.features, &w);
        assert!(out.hessian.max_abs_diff(&expect) < 1e-6);
        assert_eq!(out.hessian.shape(), (36, 36));
    }

    #[test]
    fn s2c2_matches_local_and_is_faster() {
        // Wide-enough feature dimension that the 12-way chunking is real
        // (a_t has 36 rows -> 12 per grid partition -> rpc 1).
        let data = gisette_like(48, 36, 43);
        let w = Vector::from_fn(48, |i| 0.1 + (i % 5) as f64 * 0.05);
        let expect = local_hessian(&data.features, &w);

        let mut conv =
            DistributedHessian::new(&data.features, &config(), 3, PolyStrategyKind::Conventional)
                .unwrap();
        let mut s2c2 =
            DistributedHessian::new(&data.features, &config(), 3, PolyStrategyKind::S2c2).unwrap();
        let mut conv_lat = 0.0;
        let mut s2c2_lat = 0.0;
        for _ in 0..4 {
            let oc = conv.compute(&w).unwrap();
            let os = s2c2.compute(&w).unwrap();
            assert!(oc.hessian.max_abs_diff(&expect) < 1e-6);
            assert!(os.hessian.max_abs_diff(&expect) < 1e-6);
            conv_lat += oc.latency;
            s2c2_lat += os.latency;
        }
        assert!(
            s2c2_lat < conv_lat,
            "S2C2 poly ({s2c2_lat}) should beat conventional ({conv_lat})"
        );
    }

    #[test]
    fn logistic_weights_are_in_quarter_range() {
        let data = gisette_like(30, 8, 47);
        let h =
            DistributedHessian::new(&data.features, &config(), 3, PolyStrategyKind::Conventional)
                .unwrap();
        let w = h.logistic_weights(&Vector::zeros(8));
        for &v in w.as_slice() {
            assert!((0.0..=0.25 + 1e-12).contains(&v));
        }
        // sigma(0) = 0.5 -> weight exactly 0.25.
        assert!((w[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wrong_weight_length_rejected() {
        let data = gisette_like(30, 8, 53);
        let mut h =
            DistributedHessian::new(&data.features, &config(), 3, PolyStrategyKind::Conventional)
                .unwrap();
        assert!(h.compute(&Vector::zeros(29)).is_err());
    }

    #[test]
    fn oversized_grid_rejected() {
        let data = gisette_like(30, 8, 59);
        assert!(DistributedHessian::new(
            &data.features,
            &config(),
            4, // 16 > 12 workers
            PolyStrategyKind::S2c2
        )
        .is_err());
    }
}
