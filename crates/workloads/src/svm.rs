//! Distributed linear SVM by hinge-loss subgradient descent.
//!
//! The cloud experiments (Figs 8–11, 13) run SVM; structurally it is the
//! same two-coded-products loop as logistic regression with the logistic
//! residual replaced by the hinge subgradient indicator.

use crate::datasets::Classification;
use crate::exec::ExecConfig;
use s2c2_core::job::CodedJob;
use s2c2_core::S2c2Error;
use s2c2_linalg::{Matrix, Vector};

/// Report of one SVM subgradient step.
#[derive(Debug, Clone)]
pub struct SvmStepReport {
    /// Sum of both coded jobs' simulated latencies.
    pub latency: f64,
    /// Hinge objective after the step.
    pub objective: f64,
    /// Training accuracy after the step.
    pub accuracy: f64,
}

/// Distributed SVM trainer state.
pub struct DistributedSvm {
    forward: CodedJob,
    backward: CodedJob,
    features: Matrix,
    labels: Vector,
    weights: Vector,
    learning_rate: f64,
    l2: f64,
}

impl DistributedSvm {
    /// Builds the trainer (encodes `A` forward, `Aᵀ` backward).
    ///
    /// # Errors
    ///
    /// Propagates job-construction failures.
    pub fn new(
        data: &Classification,
        config: &ExecConfig,
        learning_rate: f64,
        l2: f64,
    ) -> Result<Self, S2c2Error> {
        Ok(DistributedSvm {
            forward: config.build_job(data.features.clone())?,
            backward: config.build_job(data.features.transpose())?,
            features: data.features.clone(),
            labels: data.labels.clone(),
            weights: Vector::zeros(data.features.cols()),
            learning_rate,
            l2,
        })
    }

    /// Current model weights.
    #[must_use]
    pub fn weights(&self) -> &Vector {
        &self.weights
    }

    /// Runs one subgradient iteration through the coded jobs.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/decode failures.
    pub fn step(&mut self) -> Result<SvmStepReport, S2c2Error> {
        let rows = self.features.rows() as f64;
        // Forward margins (distributed).
        let fwd = self.forward.run_iteration(&self.weights)?;
        // Hinge active-set indicator: -y_i where y_i * u_i < 1, else 0.
        let indicator = Vector::from_fn(fwd.result.len(), |i| {
            if self.labels[i] * fwd.result[i] < 1.0 {
                -self.labels[i]
            } else {
                0.0
            }
        });
        // Backward product (distributed).
        let bwd = self.backward.run_iteration(&indicator)?;
        let mut grad = bwd.result;
        grad.scale(1.0 / rows);
        grad.axpy(self.l2, &self.weights);
        self.weights.axpy(-self.learning_rate, &grad);

        Ok(SvmStepReport {
            latency: fwd.metrics.latency + bwd.metrics.latency,
            objective: self.objective(),
            accuracy: self.accuracy(),
        })
    }

    /// Regularized hinge objective (computed locally).
    #[must_use]
    pub fn objective(&self) -> f64 {
        let u = self.features.matvec(&self.weights);
        let hinge: f64 = (0..u.len())
            .map(|i| (1.0 - self.labels[i] * u[i]).max(0.0))
            .sum();
        hinge / u.len() as f64 + 0.5 * self.l2 * self.weights.dot(&self.weights)
    }

    /// Training accuracy (computed locally).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let u = self.features.matvec(&self.weights);
        let correct = (0..u.len())
            .filter(|&i| (u[i] >= 0.0) == (self.labels[i] > 0.0))
            .count();
        correct as f64 / u.len() as f64
    }

    /// Total simulated latency across both jobs so far.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.forward.metrics().total_latency() + self.backward.metrics().total_latency()
    }

    /// Accumulated metrics of the forward (`A·w`) job — the wasted-work
    /// accounting behind Figs 9/11.
    #[must_use]
    pub fn forward_metrics(&self) -> &s2c2_cluster::JobMetrics {
        self.forward.metrics()
    }

    /// Accumulated metrics of the backward (`Aᵀ·g`) job.
    #[must_use]
    pub fn backward_metrics(&self) -> &s2c2_cluster::JobMetrics {
        self.backward.metrics()
    }
}

impl std::fmt::Debug for DistributedSvm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedSvm")
            .field("rows", &self.features.rows())
            .field("cols", &self.features.cols())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gisette_like;
    use s2c2_cluster::ClusterSpec;
    use s2c2_coding::mds::MdsParams;
    use s2c2_core::strategy::StrategyKind;

    fn config(strategy: StrategyKind) -> ExecConfig {
        let cluster = ClusterSpec::builder(10)
            .compute_bound()
            .seed(5)
            .cloud(&s2c2_trace::CloudTraceConfig::calm())
            .build();
        ExecConfig::new(MdsParams::new(10, 7), cluster)
            .strategy(strategy)
            .chunks_per_worker(7)
    }

    #[test]
    fn training_improves_objective() {
        let data = gisette_like(140, 12, 23);
        let mut svm =
            DistributedSvm::new(&data, &config(StrategyKind::S2c2General), 0.2, 1e-3).unwrap();
        let initial = svm.objective();
        let mut last = None;
        for _ in 0..20 {
            last = Some(svm.step().unwrap());
        }
        let last = last.unwrap();
        assert!(
            last.objective < initial * 0.7,
            "objective {initial} -> {}",
            last.objective
        );
        assert!(last.accuracy > 0.85, "accuracy {}", last.accuracy);
    }

    #[test]
    fn distributed_matches_local_reference() {
        let data = gisette_like(70, 6, 29);
        let mut dist =
            DistributedSvm::new(&data, &config(StrategyKind::MdsCoded), 0.1, 0.0).unwrap();
        let _ = dist.step().unwrap();

        let mut w = Vector::zeros(6);
        let u = data.features.matvec(&w);
        let ind = Vector::from_fn(70, |i| {
            if data.labels[i] * u[i] < 1.0 {
                -data.labels[i]
            } else {
                0.0
            }
        });
        let mut grad = data.features.transpose().matvec(&ind);
        grad.scale(1.0 / 70.0);
        w.axpy(-0.1, &grad);
        s2c2_linalg::assert_slices_close(dist.weights().as_slice(), w.as_slice(), 1e-6);
    }

    #[test]
    fn s2c2_no_slower_than_mds_on_calm_cloud() {
        let data = gisette_like(280, 10, 31);
        let mut mds =
            DistributedSvm::new(&data, &config(StrategyKind::MdsCoded), 0.2, 0.0).unwrap();
        let mut s2c2 =
            DistributedSvm::new(&data, &config(StrategyKind::S2c2General), 0.2, 0.0).unwrap();
        for _ in 0..8 {
            let _ = mds.step().unwrap();
            let _ = s2c2.step().unwrap();
        }
        assert!(
            s2c2.total_latency() < mds.total_latency(),
            "S2C2 {} should beat MDS {} on a calm cloud",
            s2c2.total_latency(),
            mds.total_latency()
        );
    }
}
