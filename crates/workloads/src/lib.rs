//! The paper's evaluation workloads, running on coded distributed matvec.
//!
//! §6.3: *"We evaluated S²C² on MDS using the following linear algebraic
//! algorithms: Logistic Regression, Support Vector Machine, Page Rank and
//! Graph Filtering … We further evaluate S²C² on polynomial coding for
//! computing the Hessian matrix."* This crate implements all five, each
//! parameterized over the scheduling strategy via `s2c2-core`'s job API:
//!
//! * [`logreg::DistributedLogReg`] — gradient descent on a gisette-like
//!   dataset; forward (`A·w`) and backward (`Aᵀ·g`) products both run as
//!   coded jobs.
//! * [`svm::DistributedSvm`] — hinge-loss subgradient descent, same
//!   structure.
//! * [`pagerank::DistributedPageRank`] — power iteration over a
//!   column-stochastic link matrix from a power-law graph.
//! * [`graph_filter::DistributedGraphFilter`] — n-hop combinatorial
//!   Laplacian filtering (repeated `L·x`).
//! * [`hessian::DistributedHessian`] — `Aᵀ·diag(w)·A` on polynomial
//!   codes (conventional vs S²C²-scheduled).
//!
//! [`datasets`] generates the data substitutes documented in DESIGN.md
//! (the UCI gisette set and the Toronto ranking graph are replaced by
//! statistically similar synthetic generators).

#![warn(missing_docs)]

pub mod datasets;
pub mod exec;
pub mod graph_filter;
pub mod hessian;
pub mod logreg;
pub mod pagerank;
pub mod svm;

pub use exec::ExecConfig;
