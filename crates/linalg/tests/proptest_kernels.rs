//! Property tests for the batch-first kernel layer: the cache-blocked,
//! unrolled multi-RHS kernels must agree with a plain naive reference
//! (serial left-to-right accumulation, no tiling) across *ragged* shapes —
//! dimensions of 1, dimensions straddling the cache-block and RHS-tile
//! boundaries, and comfortably large ones — including arbitrary row
//! sub-ranges.
//!
//! Tolerance is 1e-12 relative to the magnitude of each output element
//! (absolute below magnitude 1): the kernels reassociate the per-row sum
//! across four lanes, so exact bitwise equality with a serial fold is not
//! expected, but anything past 1e-12 would indicate a kernel indexing bug
//! rather than rounding.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use s2c2_linalg::multivector::{row_block_for, RHS_TILE};
use s2c2_linalg::{Matrix, MultiVector, Vector};

/// Column counts covering degenerate (1), the dot-product quad boundary
/// (3/4/5), and sizes where `row_block_for` leaves the clamp region.
const COLS: &[usize] = &[1, 3, 4, 5, 63, 64, 65, 200];

/// RHS counts covering degenerate (1), the `RHS_TILE` boundary (tile −1,
/// tile, tile +1), both remainder paths after full tiles (2·tile +1), and
/// a larger stack.
const MEMBERS: &[usize] = &[1, 2, RHS_TILE - 1, RHS_TILE, RHS_TILE + 1, 9, 16];

/// Deterministic pseudo-random fill so a failing case reproduces from the
/// printed inputs without shipping megabytes of generated data.
fn lcg_fill(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// Serial reference: for each row and member, one plain left-to-right
/// fold. Matches the kernel's output layout (row-major, member-minor).
fn naive_multi_rows(a: &Matrix, xs: &MultiVector, begin: usize, end: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity((end - begin) * xs.count());
    for r in begin..end {
        for m in 0..xs.count() {
            let mut s = 0.0;
            for (av, xv) in a.row(r).iter().zip(xs.member(m)) {
                s += av * xv;
            }
            out.push(s);
        }
    }
    out
}

fn assert_close(got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-12 * w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() <= tol,
            "element {i}: kernel {g} vs naive {w} (tol {tol})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_multi_rhs_matches_naive_on_ragged_shapes(
        cols_idx in 0usize..8,
        rows_sel in 0usize..5,
        members_idx in 0usize..7,
        seed in any::<u64>(),
    ) {
        let cols = COLS[cols_idx];
        // Rows straddling the cache-block boundary for *this* column
        // count, plus degenerate and mid-block sizes.
        let block = row_block_for(cols);
        let rows = match rows_sel {
            0 => 1,
            1 => block - 1,
            2 => block,
            3 => block + 1,
            _ => 37,
        };
        let members = MEMBERS[members_idx];

        let mut next = lcg_fill(seed);
        let a = Matrix::from_fn(rows, cols, |_, _| next());
        let xs = MultiVector::from_fn(members, cols, |_, _| next());

        let got = a.matvec_multi(&xs);
        prop_assert_eq!(got.rows(), rows);
        prop_assert_eq!(got.cols(), members);
        assert_close(got.as_slice(), &naive_multi_rows(&a, &xs, 0, rows))?;
    }

    #[test]
    fn blocked_multi_rhs_row_ranges_match_naive(
        cols_idx in 0usize..8,
        members_idx in 0usize..7,
        begin in 0usize..40,
        span in 0usize..40,
        seed in any::<u64>(),
    ) {
        let cols = COLS[cols_idx];
        let members = MEMBERS[members_idx];
        let rows = 64;
        let begin = begin.min(rows);
        let end = (begin + span).min(rows);

        let mut next = lcg_fill(seed);
        let a = Matrix::from_fn(rows, cols, |_, _| next());
        let xs = MultiVector::from_fn(members, cols, |_, _| next());

        let got = a.matvec_multi_rows(&xs, begin, end);
        prop_assert_eq!(got.rows(), end - begin);
        assert_close(got.as_slice(), &naive_multi_rows(&a, &xs, begin, end))?;
    }

    #[test]
    fn single_rhs_matvec_matches_naive(
        cols_idx in 0usize..8,
        rows_sel in 0usize..5,
        seed in any::<u64>(),
    ) {
        let cols = COLS[cols_idx];
        let block = row_block_for(cols);
        let rows = match rows_sel {
            0 => 1,
            1 => block - 1,
            2 => block,
            3 => block + 1,
            _ => 29,
        };

        let mut next = lcg_fill(seed);
        let a = Matrix::from_fn(rows, cols, |_, _| next());
        let x = Vector::from_fn(cols, |_| next());

        let got = a.matvec(&x);
        let want = naive_multi_rows(&a, &MultiVector::single(&x), 0, rows);
        assert_close(got.as_slice(), &want)?;
    }
}
