//! Dense linear algebra substrate for the S²C² coded-computing stack.
//!
//! The coded-computing layers in this workspace (`s2c2-coding`, the S²C²
//! scheduler, and the workloads) only need a small, predictable set of dense
//! operations over `f64`:
//!
//! * a row-major [`Matrix`] with cheap row-range views (coded partitions are
//!   contiguous row blocks),
//! * matrix–vector and matrix–matrix products, both sequential and
//!   thread-parallel,
//! * an LU solver with partial pivoting (MDS decoding inverts small
//!   generator submatrices),
//! * structured matrix builders ([Cauchy](structured::cauchy) and
//!   [Vandermonde](structured::vandermonde)) used to construct MDS generator
//!   matrices and polynomial-code evaluation systems.
//!
//! Everything is implemented from scratch on `std` + `rand`; there is no
//! BLAS dependency so the workspace remains fully self-contained and
//! deterministic across platforms.
//!
//! # Example
//!
//! ```
//! use s2c2_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let x = Vector::from(vec![1.0, 1.0]);
//! let y = a.matvec(&x);
//! assert_eq!(y.as_slice(), &[3.0, 7.0]);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod matrix;
pub mod multivector;
pub mod parallel;
pub mod solve;
pub mod structured;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use multivector::MultiVector;
pub use solve::LuFactors;
pub use vector::Vector;

/// Tolerance used across the workspace when comparing floating point
/// results that went through an encode → compute → decode round trip.
///
/// MDS decoding solves systems of size at most `n - k` (≤ 10 in every paper
/// configuration) built from Cauchy blocks, so round-trip error stays many
/// orders of magnitude below this bound; the constant is deliberately loose
/// so tests assert *correct decoding*, not platform-specific rounding.
pub const ROUND_TRIP_TOL: f64 = 1e-6;

/// Returns `true` when `a` and `b` are within `tol` of each other in the
/// infinity norm sense, scaled by the magnitude of the values involved.
///
/// This is the comparison used by decode-correctness tests throughout the
/// workspace: absolute for small values, relative for large ones.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

/// Asserts that two slices are element-wise [`approx_eq`].
///
/// # Panics
///
/// Panics with the first offending index when the slices differ in length
/// or any element pair is further apart than `tol` (scaled).
pub fn assert_slices_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(
        a.len(),
        b.len(),
        "slice lengths differ: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            approx_eq(*x, *y, tol),
            "slices differ at index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_for_small_values() {
        assert!(approx_eq(1e-9, 0.0, 1e-8));
        assert!(!approx_eq(1e-3, 0.0, 1e-8));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-9), 1e-8));
        assert!(!approx_eq(1e12, 1.1e12, 1e-8));
    }

    #[test]
    #[should_panic(expected = "slices differ at index 1")]
    fn assert_slices_close_reports_index() {
        assert_slices_close(&[1.0, 2.0], &[1.0, 3.0], 1e-9);
    }
}
