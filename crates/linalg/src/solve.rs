//! LU factorization with partial pivoting and the solvers built on it.
//!
//! MDS decoding reduces to solving an `m × m` linear system where
//! `m ≤ n − k` (at most 10 in every configuration the paper evaluates), and
//! polynomial-code decoding interpolates through at most `a·b` points, so a
//! dense LU with partial pivoting is both sufficient and the numerically
//! appropriate tool.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// An LU factorization `P·A = L·U` of a square matrix, stored compactly.
///
/// Decoders factor a generator submatrix once and then reuse it to solve
/// for every chunk of results, so the factorization is a first-class value.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row used for pivot row `i`.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot collapses below `1e-300`
    ///   (exactly singular for all practical purposes).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{n}x{n} (square)"),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivoting: pick the largest magnitude entry in the column.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in col + 1..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                perm.swap(col, pivot_row);
                for c in 0..n {
                    let a = lu.get(col, c);
                    let b = lu.get(pivot_row, c);
                    lu.set(col, c, b);
                    lu.set(pivot_row, c, a);
                }
            }
            let inv_pivot = 1.0 / lu.get(col, col);
            for r in col + 1..n {
                let factor = lu.get(r, col) * inv_pivot;
                lu.set(r, col, factor);
                if factor != 0.0 {
                    for c in col + 1..n {
                        let v = lu.get(r, c) - factor * lu.get(col, c);
                        lu.set(r, c, v);
                    }
                }
            }
        }
        Ok(LuFactors { lu, perm })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for one right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[must_use]
    pub fn solve(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        let mut x = vec![0.0; n];
        // Forward substitution on permuted rhs (L has implicit unit diagonal).
        for i in 0..n {
            let mut sum = b.as_slice()[self.perm[i]];
            for (j, &xj) in x[..i].iter().enumerate() {
                sum -= self.lu.get(i, j) * xj;
            }
            x[i] = sum;
        }
        // Back substitution through U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lu.get(i, j) * xj;
            }
            x[i] = sum / self.lu.get(i, i);
        }
        Vector::from(x)
    }

    /// Solves `A·X = B` column-by-column for a matrix right-hand side.
    ///
    /// Used by decoders that recover whole row-blocks of results at once:
    /// `B`'s rows are the received coded results, and each *column* of the
    /// unknown corresponds to one output column of the workload.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()`.
    #[must_use]
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_matrix: rhs row mismatch");
        let cols = b.cols();
        let mut out = Matrix::zeros(n, cols);
        // Substitute directly in two reused scratch buffers: the stacked
        // decoder solves `rows_per_chunk × members` columns per chunk, so
        // per-column allocations would dominate the small-system solves.
        let mut rhs = vec![0.0; n];
        let mut x = vec![0.0; n];
        for c in 0..cols {
            for (r, slot) in rhs.iter_mut().enumerate() {
                *slot = b.get(r, c);
            }
            // Forward substitution on the permuted rhs (unit diagonal L).
            for i in 0..n {
                let mut sum = rhs[self.perm[i]];
                for (j, &xj) in x[..i].iter().enumerate() {
                    sum -= self.lu.get(i, j) * xj;
                }
                x[i] = sum;
            }
            // Back substitution through U.
            for i in (0..n).rev() {
                let mut sum = x[i];
                for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                    sum -= self.lu.get(i, j) * xj;
                }
                x[i] = sum / self.lu.get(i, i);
            }
            for (r, &xr) in x.iter().enumerate() {
                out.set(r, c, xr);
            }
        }
        out
    }

    /// Computes the inverse matrix explicitly.
    ///
    /// Only used in tests and conditioning diagnostics; solvers should use
    /// [`LuFactors::solve`] directly.
    #[must_use]
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// One-shot solve of `A·x = b`.
///
/// # Errors
///
/// Propagates factorization failures ([`LinalgError::Singular`] /
/// [`LinalgError::ShapeMismatch`]).
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    Ok(LuFactors::factor(a)?.solve(b))
}

/// Estimates the 1-norm condition number `κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁`.
///
/// Computes `A⁻¹` explicitly, which is fine for the small decode systems
/// this workspace cares about. Used by the conditioning ablation bench to
/// compare Cauchy vs Vandermonde parity blocks.
///
/// # Errors
///
/// Propagates factorization failures for singular input.
pub fn condition_number_1(a: &Matrix) -> Result<f64, LinalgError> {
    let inv = LuFactors::factor(a)?.inverse();
    Ok(norm_1(a) * norm_1(&inv))
}

/// Matrix 1-norm (maximum absolute column sum).
#[must_use]
pub fn norm_1(a: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for c in 0..a.cols() {
        let mut s = 0.0;
        for r in 0..a.rows() {
            s += a.get(r, c).abs();
        }
        best = best.max(s);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_slices_close;

    #[test]
    fn solve_identity() {
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = solve(&Matrix::identity(3), &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = Vector::from(vec![5.0, 10.0]);
        let x = solve(&a, &b).unwrap();
        assert_slices_close(x.as_slice(), &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Vector::from(vec![7.0, 9.0]);
        let x = solve(&a, &b).unwrap();
        assert_slices_close(x.as_slice(), &[9.0, 7.0], 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = LuFactors::factor(&a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::factor(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_matrix_matches_columnwise_solves() {
        let a = Matrix::from_rows(vec![vec![4.0, 1.0], vec![2.0, 3.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 4.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve_matrix(&b);
        // Verify A * X == B.
        let back = a.matmul(&x);
        assert!(back.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(vec![
            vec![3.0, 1.0, 0.0],
            vec![1.0, 4.0, 1.0],
            vec![0.0, 2.0, 5.0],
        ]);
        let inv = LuFactors::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn random_solve_roundtrip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 10, 20] {
            let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
                // Diagonal dominance keeps the random matrix well conditioned.
                .also_add_diagonal(n as f64);
            let x_true = Vector::from_fn(n, |i| i as f64 - 1.5);
            let b = a.matvec(&x_true);
            let x = solve(&a, &b).unwrap();
            assert_slices_close(x.as_slice(), x_true.as_slice(), 1e-9);
        }
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        assert!((condition_number_1(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_1_column_sums() {
        let a = Matrix::from_rows(vec![vec![1.0, -2.0], vec![-3.0, 1.0]]);
        assert_eq!(norm_1(&a), 4.0);
    }

    // Small test-only helper for building diagonally dominant matrices.
    trait AddDiagonal {
        fn also_add_diagonal(self, v: f64) -> Matrix;
    }
    impl AddDiagonal for Matrix {
        fn also_add_diagonal(mut self, v: f64) -> Matrix {
            let n = self.rows().min(self.cols());
            for i in 0..n {
                let cur = self.get(i, i);
                self.set(i, i, cur + v);
            }
            self
        }
    }
}
