//! Structured matrix builders used to construct coded-computing generators.
//!
//! * [`cauchy`] — every square submatrix of a Cauchy matrix is nonsingular,
//!   which makes `[I; C]` a *systematic MDS generator* over the reals. This
//!   is the workhorse behind `s2c2-coding`'s MDS codec.
//! * [`vandermonde`] — classic MDS construction; retained both for the
//!   polynomial-code decoder (interpolation) and for the conditioning
//!   ablation bench that motivates the Cauchy choice.
//! * [`chebyshev_points`] — well-spread evaluation points that keep
//!   polynomial-code interpolation systems invertible in `f64`.

use crate::matrix::Matrix;

/// Builds the `m × k` Cauchy matrix `C[i][j] = 1 / (x_i − y_j)`.
///
/// # Panics
///
/// Panics if any `x_i == y_j` (the matrix entry would be infinite) or if
/// the `x` (resp. `y`) values are not pairwise distinct, both of which
/// would break the MDS property.
#[must_use]
pub fn cauchy(x: &[f64], y: &[f64]) -> Matrix {
    assert_distinct(x, "cauchy x nodes");
    assert_distinct(y, "cauchy y nodes");
    Matrix::from_fn(x.len(), y.len(), |i, j| {
        let d = x[i] - y[j];
        assert!(d != 0.0, "cauchy nodes collide: x[{i}] == y[{j}]");
        1.0 / d
    })
}

/// Standard Cauchy node layout for an `(n, k)` systematic MDS code:
/// `y_j = j` for the `k` data coordinates and `x_i = k − 0.5 + i` for the
/// `n − k` parity coordinates.
///
/// The half-integer offset keeps the two node families disjoint while the
/// minimum separation (0.5) keeps all entries bounded by 2, which in turn
/// keeps decode systems well conditioned.
#[must_use]
pub fn cauchy_parity_nodes(n: usize, k: usize) -> (Vec<f64>, Vec<f64>) {
    let y: Vec<f64> = (0..k).map(|j| j as f64).collect();
    let x: Vec<f64> = (0..n - k).map(|i| k as f64 - 0.5 + i as f64).collect();
    (x, y)
}

/// Builds the `m × k` Vandermonde matrix `V[i][j] = points[i]^j`.
///
/// # Panics
///
/// Panics if the points are not pairwise distinct (the matrix would be
/// singular).
#[must_use]
pub fn vandermonde(points: &[f64], k: usize) -> Matrix {
    assert_distinct(points, "vandermonde points");
    Matrix::from_fn(points.len(), k, |i, j| points[i].powi(j as i32))
}

/// `n` Chebyshev points of the second kind mapped onto `[lo, hi]`.
///
/// Chebyshev spacing minimizes the growth of interpolation error, so the
/// polynomial-code decoder uses these as worker evaluation points instead
/// of the integers `0..n` the paper writes for exposition (the paper's
/// finite-precision experiments are small enough not to care; ours sweep
/// up to 51 nodes where integer nodes would be catastrophically
/// ill-conditioned in `f64`).
///
/// # Panics
///
/// Panics if `n == 0` or `lo >= hi`.
#[must_use]
pub fn chebyshev_points(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one point");
    assert!(lo < hi, "invalid interval");
    if n == 1 {
        return vec![0.5 * (lo + hi)];
    }
    let mid = 0.5 * (lo + hi);
    let half = 0.5 * (hi - lo);
    (0..n)
        .map(|i| {
            let theta = std::f64::consts::PI * i as f64 / (n - 1) as f64;
            mid - half * theta.cos()
        })
        .collect()
}

fn assert_distinct(xs: &[f64], what: &str) {
    for i in 0..xs.len() {
        for j in i + 1..xs.len() {
            assert!(
                xs[i] != xs[j],
                "{what} must be pairwise distinct (index {i} == index {j})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{condition_number_1, LuFactors};

    #[test]
    fn cauchy_entries() {
        let c = cauchy(&[2.0, 3.0], &[0.0, 1.0]);
        assert_eq!(c.get(0, 0), 0.5);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 1.0 / 3.0);
        assert_eq!(c.get(1, 1), 0.5);
    }

    #[test]
    #[should_panic(expected = "cauchy nodes collide")]
    fn cauchy_rejects_collisions() {
        let _ = cauchy(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn cauchy_rejects_duplicate_nodes() {
        let _ = cauchy(&[1.0, 1.0], &[0.0, 2.0]);
    }

    #[test]
    fn parity_nodes_disjoint_and_sized() {
        for (n, k) in [(4usize, 2usize), (12, 6), (12, 10), (50, 40)] {
            let (x, y) = cauchy_parity_nodes(n, k);
            assert_eq!(x.len(), n - k);
            assert_eq!(y.len(), k);
            for xi in &x {
                for yj in &y {
                    assert!(xi != yj);
                }
            }
        }
    }

    #[test]
    fn cauchy_square_submatrices_invertible_for_paper_configs() {
        // The MDS property we rely on: any (n-k)-sized square submatrix of
        // the parity block is invertible. Exhaustively check the worst
        // (full-size) submatrices for each paper configuration.
        for (n, k) in [(4usize, 2usize), (12, 6), (12, 10), (10, 7), (50, 40)] {
            let (x, y) = cauchy_parity_nodes(n, k);
            let c = cauchy(&x, &y);
            // Take the leading (n-k) columns: representative square block.
            let m = n - k;
            let sub = Matrix::from_fn(m, m, |i, j| c.get(i, j));
            assert!(LuFactors::factor(&sub).is_ok(), "({n},{k}) block singular");
        }
    }

    #[test]
    fn vandermonde_entries() {
        let v = vandermonde(&[2.0, 3.0], 3);
        assert_eq!(v.get(0, 0), 1.0);
        assert_eq!(v.get(0, 2), 4.0);
        assert_eq!(v.get(1, 2), 9.0);
    }

    #[test]
    fn chebyshev_points_span_interval() {
        let pts = chebyshev_points(9, -1.0, 1.0);
        assert_eq!(pts.len(), 9);
        assert!((pts[0] + 1.0).abs() < 1e-12);
        assert!((pts[8] - 1.0).abs() < 1e-12);
        // Strictly increasing.
        for w in pts.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Single point degenerates to the midpoint.
        assert_eq!(chebyshev_points(1, 0.0, 2.0), vec![1.0]);
    }

    #[test]
    fn chebyshev_vandermonde_better_conditioned_than_integer_nodes() {
        // The quantitative version of the doc-comment claim: for a 9-point
        // interpolation (the Fig 12 Hessian configuration), Chebyshev nodes
        // on [-1, 1] beat integer nodes 0..9 by orders of magnitude.
        let k = 9;
        let integer: Vec<f64> = (0..k).map(|i| i as f64).collect();
        let cheb = chebyshev_points(k, -1.0, 1.0);
        let kappa_int = condition_number_1(&vandermonde(&integer, k)).unwrap();
        let kappa_cheb = condition_number_1(&vandermonde(&cheb, k)).unwrap();
        assert!(
            kappa_cheb * 100.0 < kappa_int,
            "expected ≥100x conditioning win, got {kappa_cheb:.3e} vs {kappa_int:.3e}"
        );
    }
}
