//! Error type shared by the linear-algebra substrate.

use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ///
    /// Carries a human-readable description of the two shapes involved.
    ShapeMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape actually supplied.
        found: String,
    },
    /// A factorization or solve encountered a (numerically) singular matrix.
    Singular {
        /// Pivot column at which elimination broke down.
        pivot: usize,
    },
    /// An argument was out of the function's documented domain
    /// (e.g. an empty matrix where a non-empty one is required).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular (elimination broke down at pivot {pivot})"
                )
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            expected: "2x3".into(),
            found: "3x2".into(),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 2x3, found 3x2");
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));
    }

    #[test]
    fn display_invalid_argument() {
        let e = LinalgError::InvalidArgument("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }
}
