//! Contiguous multi-RHS storage and the cache-blocked batch kernels.
//!
//! Batched serving stacks `m` right-hand sides onto one dispatch round,
//! and the hot kernel of the whole stack is "many dot products of the
//! same matrix rows against those `m` vectors". Storing the stack as
//! `m` separate heap vectors (the pre-batch-first shape) costs a
//! pointer chase per member per row and defeats blocking; storing it as
//! one row-major `count × len` buffer — the `dft_batch`-over-row-major
//! API shape — makes every per-member view a cheap contiguous slice and
//! lets the matvec kernel tile over members so each matrix row is
//! loaded once per [`RHS_TILE`] members instead of once per member.
//!
//! The batched entry point (`matvec_multi_block`, surfaced as
//! [`crate::Matrix::matvec_multi_rows`]) is the primitive; the
//! single-vector kernels are the `count == 1` degenerate case and
//! produce bit-identical results to the historical per-row
//! `dot_slices` loop, which is what keeps batched and unbatched
//! pipelines comparable at machine precision.

use crate::vector::{dot_slices, Vector};

/// Number of right-hand sides processed per kernel tile: each matrix
/// row element is loaded once and multiplied into this many
/// accumulators, so the A-side memory traffic of a stacked matvec drops
/// by this factor versus per-member passes.
pub const RHS_TILE: usize = 4;

/// Target number of matrix *elements* per row block: blocks are sized
/// so a block of A rows (~256 KiB) stays cache-resident while every RHS
/// tile streams over it.
pub const ROW_BLOCK_ELEMS: usize = 32 * 1024;

/// Rows per cache block for a matrix with `cols` columns.
#[must_use]
pub fn row_block_for(cols: usize) -> usize {
    (ROW_BLOCK_ELEMS / cols.max(1)).clamp(4, 512)
}

/// A contiguous stack of `count` equal-length right-hand sides.
///
/// Stored row-major (`count × len`): member `i` is the slice
/// `data[i*len .. (i+1)*len]`. One allocation for the whole batch, so a
/// dispatch round ships a single buffer and workers index members
/// without pointer chasing.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVector {
    count: usize,
    len: usize,
    data: Vec<f64>,
}

impl MultiVector {
    /// Creates a zero stack of `count` members of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` (a stacked operation needs at least one
    /// right-hand side; the single-vector case is `count == 1`).
    #[must_use]
    pub fn zeros(count: usize, len: usize) -> Self {
        assert!(count > 0, "a MultiVector needs at least one member");
        MultiVector {
            count,
            len,
            data: vec![0.0; count * len],
        }
    }

    /// Builds a stack from a generating function over `(member, index)`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn from_fn(count: usize, len: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut mv = MultiVector::zeros(count, len);
        for m in 0..count {
            for i in 0..len {
                mv.data[m * len + i] = f(m, i);
            }
        }
        mv
    }

    /// Stacks copies of the given vectors.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or the vectors have differing lengths.
    #[must_use]
    pub fn from_vectors(xs: &[&Vector]) -> Self {
        assert!(!xs.is_empty(), "a MultiVector needs at least one member");
        let len = xs[0].len();
        let mut mv = MultiVector::zeros(xs.len(), len);
        for (m, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), len, "member {m} has inconsistent length");
            mv.member_mut(m).copy_from_slice(x.as_slice());
        }
        mv
    }

    /// Builds a stack that takes ownership of a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `data.len() != count * len`.
    #[must_use]
    pub fn from_flat(count: usize, len: usize, data: Vec<f64>) -> Self {
        assert!(count > 0, "a MultiVector needs at least one member");
        assert_eq!(data.len(), count * len, "flat buffer length mismatch");
        MultiVector { count, len, data }
    }

    /// A single-member stack copied from `x` — the degenerate case every
    /// unbatched call site passes through.
    #[must_use]
    pub fn single(x: &Vector) -> Self {
        MultiVector {
            count: 1,
            len: x.len(),
            data: x.as_slice().to_vec(),
        }
    }

    /// Number of stacked right-hand sides.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Length of each member.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the members have zero length (the stack itself is never
    /// empty — `count >= 1` by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Member `m` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `m >= count`.
    #[must_use]
    #[inline]
    pub fn member(&self, m: usize) -> &[f64] {
        assert!(m < self.count, "member index out of range");
        &self.data[m * self.len..(m + 1) * self.len]
    }

    /// Mutable view of member `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= count`.
    #[inline]
    pub fn member_mut(&mut self, m: usize) -> &mut [f64] {
        assert!(m < self.count, "member index out of range");
        &mut self.data[m * self.len..(m + 1) * self.len]
    }

    /// Iterates over the member slices in order.
    pub fn members(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.len.max(1)).take(self.count)
    }

    /// Flat view of the whole stack.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copies the members back out as owned [`Vector`]s.
    #[must_use]
    pub fn to_vectors(&self) -> Vec<Vector> {
        self.members().map(Vector::from).collect()
    }

    /// Bytes shipped when this stack crosses the simulated network.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        (self.data.len() as u64) * 8
    }
}

/// Four simultaneous dot products of `row` against `x0..x3`.
///
/// Each member keeps the exact [`dot_slices`] accumulation structure
/// (four lane accumulators over column quads, scalar tail, lanes summed
/// left to right), so every member's result is bit-identical to a
/// standalone `dot_slices(row, x_m)` call while `row` is loaded once
/// for all four members.
#[inline]
#[allow(clippy::many_single_char_names)]
fn dot_rhs4(row: &[f64], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64], out: &mut [f64]) {
    debug_assert!(out.len() >= 4);
    let n = row.len();
    let quads = n / 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut b0, mut b1, mut b2, mut b3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c0, mut c1, mut c2, mut c3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut d0, mut d1, mut d2, mut d3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..quads {
        let j = i * 4;
        let (r0, r1, r2, r3) = (row[j], row[j + 1], row[j + 2], row[j + 3]);
        a0 += r0 * x0[j];
        a1 += r1 * x0[j + 1];
        a2 += r2 * x0[j + 2];
        a3 += r3 * x0[j + 3];
        b0 += r0 * x1[j];
        b1 += r1 * x1[j + 1];
        b2 += r2 * x1[j + 2];
        b3 += r3 * x1[j + 3];
        c0 += r0 * x2[j];
        c1 += r1 * x2[j + 1];
        c2 += r2 * x2[j + 2];
        c3 += r3 * x2[j + 3];
        d0 += r0 * x3[j];
        d1 += r1 * x3[j + 1];
        d2 += r2 * x3[j + 2];
        d3 += r3 * x3[j + 3];
    }
    let (mut ta, mut tb, mut tc, mut td) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for j in quads * 4..n {
        let r = row[j];
        ta += r * x0[j];
        tb += r * x1[j];
        tc += r * x2[j];
        td += r * x3[j];
    }
    out[0] = a0 + a1 + a2 + a3 + ta;
    out[1] = b0 + b1 + b2 + b3 + tb;
    out[2] = c0 + c1 + c2 + c3 + tc;
    out[3] = d0 + d1 + d2 + d3 + td;
}

/// Two simultaneous dot products — the `count % RHS_TILE >= 2` remainder
/// tile, with the same per-member lane structure as [`dot_rhs4`].
#[inline]
fn dot_rhs2(row: &[f64], x0: &[f64], x1: &[f64], out: &mut [f64]) {
    debug_assert!(out.len() >= 2);
    let n = row.len();
    let quads = n / 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut b0, mut b1, mut b2, mut b3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..quads {
        let j = i * 4;
        let (r0, r1, r2, r3) = (row[j], row[j + 1], row[j + 2], row[j + 3]);
        a0 += r0 * x0[j];
        a1 += r1 * x0[j + 1];
        a2 += r2 * x0[j + 2];
        a3 += r3 * x0[j + 3];
        b0 += r0 * x1[j];
        b1 += r1 * x1[j + 1];
        b2 += r2 * x1[j + 2];
        b3 += r3 * x1[j + 3];
    }
    let (mut ta, mut tb) = (0.0f64, 0.0f64);
    for j in quads * 4..n {
        let r = row[j];
        ta += r * x0[j];
        tb += r * x1[j];
    }
    out[0] = a0 + a1 + a2 + a3 + ta;
    out[1] = b0 + b1 + b2 + b3 + tb;
}

/// The cache-blocked stacked matvec kernel over raw storage.
///
/// Computes rows `[begin, end)` of `A · xᵀ` for every member of the
/// stack: `out` receives an `(end − begin) × count` row-major block
/// (row-major over output rows, member-minor within a row — the
/// chunk-major × member-minor order the coded reply path ships).
///
/// Blocking: rows are walked in [`row_block_for`]-sized blocks and
/// members in [`RHS_TILE`]-wide tiles inside each block, so the A block
/// stays L1/L2-resident across all member tiles and each row element is
/// loaded once per tile rather than once per member. Every member's
/// value keeps the exact `dot_slices` accumulation order, so `count == 1`
/// degenerates bit-identically to the sequential single-RHS kernel.
///
/// # Panics
///
/// Panics (in debug) on inconsistent buffer shapes; callers validate.
pub(crate) fn matvec_multi_block(
    a: &[f64],
    cols: usize,
    begin: usize,
    end: usize,
    rhs: &[f64],
    count: usize,
    out: &mut [f64],
) {
    debug_assert!(count >= 1);
    debug_assert_eq!(rhs.len(), count * cols);
    debug_assert_eq!(out.len(), (end - begin) * count);
    let row_block = row_block_for(cols);
    let mut block = begin;
    while block < end {
        let block_end = (block + row_block).min(end);
        let mut m = 0;
        // Full 4-wide member tiles.
        while m + RHS_TILE <= count {
            let x0 = &rhs[m * cols..(m + 1) * cols];
            let x1 = &rhs[(m + 1) * cols..(m + 2) * cols];
            let x2 = &rhs[(m + 2) * cols..(m + 3) * cols];
            let x3 = &rhs[(m + 3) * cols..(m + 4) * cols];
            for r in block..block_end {
                let row = &a[r * cols..(r + 1) * cols];
                let o = (r - begin) * count + m;
                dot_rhs4(row, x0, x1, x2, x3, &mut out[o..o + RHS_TILE]);
            }
            m += RHS_TILE;
        }
        // 2-wide remainder tile.
        if count - m >= 2 {
            let x0 = &rhs[m * cols..(m + 1) * cols];
            let x1 = &rhs[(m + 1) * cols..(m + 2) * cols];
            for r in block..block_end {
                let row = &a[r * cols..(r + 1) * cols];
                let o = (r - begin) * count + m;
                dot_rhs2(row, x0, x1, &mut out[o..o + 2]);
            }
            m += 2;
        }
        // Single remainder member: the degenerate path, shared with the
        // single-RHS kernels.
        if m < count {
            let x = &rhs[m * cols..(m + 1) * cols];
            for r in block..block_end {
                let row = &a[r * cols..(r + 1) * cols];
                out[(r - begin) * count + m] = dot_slices(row, x);
            }
        }
        block = block_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn naive_reference(a: &Matrix, xs: &MultiVector, begin: usize, end: usize) -> Vec<f64> {
        // Deliberately independent of dot_slices: plain left-to-right sum.
        let mut out = Vec::with_capacity((end - begin) * xs.count());
        for r in begin..end {
            for m in 0..xs.count() {
                let mut s = 0.0;
                for (av, xv) in a.row(r).iter().zip(xs.member(m)) {
                    s += av * xv;
                }
                out.push(s);
            }
        }
        out
    }

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 37 + c * 11) % 19) as f64 * 0.25 - 2.0
        })
    }

    fn stack(count: usize, len: usize) -> MultiVector {
        MultiVector::from_fn(count, len, |m, i| {
            ((m * 13 + i * 7) % 17) as f64 * 0.1 - 0.8
        })
    }

    #[test]
    fn accessors_and_roundtrip() {
        let mv = stack(3, 5);
        assert_eq!(mv.count(), 3);
        assert_eq!(mv.len(), 5);
        assert!(!mv.is_empty());
        let vs = mv.to_vectors();
        assert_eq!(vs.len(), 3);
        let refs: Vec<&Vector> = vs.iter().collect();
        assert_eq!(MultiVector::from_vectors(&refs), mv);
        assert_eq!(mv.payload_bytes(), 3 * 5 * 8);
        assert_eq!(mv.members().count(), 3);
        assert_eq!(mv.members().next().unwrap(), mv.member(0));
    }

    #[test]
    fn single_matches_member() {
        let v = Vector::from_fn(7, |i| i as f64 * 0.5);
        let mv = MultiVector::single(&v);
        assert_eq!(mv.count(), 1);
        assert_eq!(mv.member(0), v.as_slice());
    }

    #[test]
    fn from_flat_roundtrip() {
        let mv = MultiVector::from_flat(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(mv.member(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_rejected() {
        let _ = MultiVector::zeros(0, 4);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn mismatched_member_lengths_rejected() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        let _ = MultiVector::from_vectors(&[&a, &b]);
    }

    #[test]
    fn kernel_matches_naive_across_tile_remainders() {
        // Member counts cover every remainder mod RHS_TILE, and column
        // counts cover every unroll remainder mod 4.
        for &count in &[1usize, 2, 3, 4, 5, 6, 7, 8, 9] {
            for &cols in &[1usize, 3, 4, 7, 8, 33] {
                let a = sample(11, cols);
                let xs = stack(count, cols);
                let mut out = vec![0.0; 11 * count];
                matvec_multi_block(a.as_slice(), cols, 0, 11, xs.as_slice(), count, &mut out);
                let expect = naive_reference(&a, &xs, 0, 11);
                crate::assert_slices_close(&out, &expect, 1e-12);
            }
        }
    }

    #[test]
    fn kernel_row_ranges_and_blocks() {
        // Rows span multiple cache blocks for tiny cols.
        let cols = 5;
        let rows = 2 * row_block_for(cols) + 3;
        let a = sample(rows, cols);
        let xs = stack(6, cols);
        for (begin, end) in [(0, rows), (1, rows - 1), (rows / 2, rows / 2)] {
            let mut out = vec![0.0; (end - begin) * 6];
            matvec_multi_block(a.as_slice(), cols, begin, end, xs.as_slice(), 6, &mut out);
            crate::assert_slices_close(&out, &naive_reference(&a, &xs, begin, end), 1e-12);
        }
    }

    #[test]
    fn single_member_is_bitwise_dot_slices() {
        let a = sample(40, 13);
        let xs = stack(1, 13);
        let mut out = vec![0.0; 40];
        matvec_multi_block(a.as_slice(), 13, 0, 40, xs.as_slice(), 1, &mut out);
        for (r, &got) in out.iter().enumerate() {
            assert_eq!(got, dot_slices(a.row(r), xs.member(0)), "row {r}");
        }
    }

    #[test]
    fn every_member_is_bitwise_dot_slices() {
        // The tiled kernels preserve the exact dot_slices accumulation
        // order per member, so stacked == standalone bit-for-bit.
        let a = sample(17, 29);
        for count in 1..=7usize {
            let xs = stack(count, 29);
            let mut out = vec![0.0; 17 * count];
            matvec_multi_block(a.as_slice(), 29, 0, 17, xs.as_slice(), count, &mut out);
            for r in 0..17 {
                for m in 0..count {
                    assert_eq!(
                        out[r * count + m],
                        dot_slices(a.row(r), xs.member(m)),
                        "row {r} member {m} of {count}"
                    );
                }
            }
        }
    }
}
