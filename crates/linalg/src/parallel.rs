//! Thread-parallel kernels over row blocks.
//!
//! The threaded cluster executor (`s2c2-cluster`) simulates workers with OS
//! threads; inside a single simulated worker we additionally want real data
//! parallelism for the large matvecs the workloads issue. This module
//! provides scoped-thread row-partitioned kernels in the spirit of rayon's
//! `par_iter` (the HPC guide's recommended shape) without pulling in a
//! work-stealing runtime: the partition sizes here are large and uniform,
//! so static splitting is both simpler and faster.

use crate::matrix::Matrix;
use crate::vector::{dot_slices, Vector};

/// Minimum number of matrix *elements* (`rows × cols`) a row-range matvec
/// must touch before [`par_matvec_rows`] spawns OS threads.
///
/// Thread spawn + join costs a few microseconds; a matvec over fewer
/// elements than this finishes sequentially in about that time, so
/// spawning would only add latency. The cutoff is on work, not rows: a
/// short-wide range (few rows, many columns) carries as much arithmetic
/// as a tall-narrow one and deserves the same decision.
pub const PAR_SPAWN_WORK: usize = 32 * 1024;

/// Whether a row-range matvec of `rows × cols` elements should spawn
/// `threads` OS threads rather than fall through to the sequential
/// kernel. Exposed so the spawn boundary is unit-testable.
#[must_use]
pub fn should_spawn(rows: usize, cols: usize, threads: usize) -> bool {
    threads > 1 && rows > 0 && rows.saturating_mul(cols) >= PAR_SPAWN_WORK
}

/// Computes `A·x` with `threads` OS threads, splitting rows evenly.
///
/// Falls back to the sequential kernel for a single thread or when the
/// total work `rows × cols` is below [`PAR_SPAWN_WORK`] (the crossover is
/// far below any matrix the workloads produce).
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `threads == 0`.
#[must_use]
pub fn par_matvec(a: &Matrix, x: &Vector, threads: usize) -> Vector {
    par_matvec_rows(a, x, 0, a.rows(), threads)
}

/// Computes rows `[begin, end)` of `A·x` with `threads` OS threads — the
/// kernel behind [`par_matvec`], exposed separately because coded workers
/// compute *chunks* (row ranges of their partition) rather than whole
/// matrices.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`, `threads == 0`, or the range is
/// out of bounds / inverted.
#[must_use]
pub fn par_matvec_rows(a: &Matrix, x: &Vector, begin: usize, end: usize, threads: usize) -> Vector {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(x.len(), a.cols(), "par_matvec: dimension mismatch");
    assert!(
        begin <= end && end <= a.rows(),
        "par_matvec: bad row range {begin}..{end} of {}",
        a.rows()
    );
    let rows = end - begin;
    if !should_spawn(rows, a.cols(), threads) {
        return a.matvec_rows(x, begin, end);
    }
    let threads = threads.min(rows);
    let mut out = vec![0.0; rows];
    let chunk = rows.div_ceil(threads);
    let xs = x.as_slice();

    std::thread::scope(|scope| {
        // Hand each thread a disjoint &mut of the output: no locks needed.
        let mut remaining: &mut [f64] = &mut out;
        let mut offset = 0usize;
        let mut handles = Vec::with_capacity(threads);
        while offset < rows {
            let stop = (offset + chunk).min(rows);
            let (mine, rest) = remaining.split_at_mut(stop - offset);
            remaining = rest;
            let a_ref = &*a;
            let first = begin + offset;
            handles.push(scope.spawn(move || {
                for (i, slot) in mine.iter_mut().enumerate() {
                    *slot = dot_slices(a_ref.row(first + i), xs);
                }
            }));
            offset = stop;
        }
        for h in handles {
            h.join().expect("par_matvec worker panicked");
        }
    });
    Vector::from(out)
}

/// Computes `A·B` with `threads` OS threads, splitting `A`'s rows evenly.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `threads == 0`.
#[must_use]
pub fn par_matmul(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(a.cols(), b.rows(), "par_matmul: dimension mismatch");
    let rows = a.rows();
    if threads == 1 || rows < 64 {
        return a.matmul(b);
    }
    let threads = threads.min(rows);
    let bc = b.cols();
    let mut out = vec![0.0; rows * bc];
    let chunk = rows.div_ceil(threads);

    std::thread::scope(|scope| {
        let mut remaining: &mut [f64] = &mut out;
        let mut begin = 0usize;
        let mut handles = Vec::with_capacity(threads);
        while begin < rows {
            let end = (begin + chunk).min(rows);
            let (mine, rest) = remaining.split_at_mut((end - begin) * bc);
            remaining = rest;
            let (a_ref, b_ref) = (&*a, &*b);
            handles.push(scope.spawn(move || {
                for local in 0..end - begin {
                    let i = begin + local;
                    let out_row = &mut mine[local * bc..(local + 1) * bc];
                    for k in 0..a_ref.cols() {
                        let a_ik = a_ref.get(i, k);
                        if a_ik == 0.0 {
                            continue;
                        }
                        for (o, bval) in out_row.iter_mut().zip(b_ref.row(k)) {
                            *o += a_ik * bval;
                        }
                    }
                }
            }));
            begin = end;
        }
        for h in handles {
            h.join().expect("par_matmul worker panicked");
        }
    });
    Matrix::from_flat(rows, bc, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn par_matvec_matches_sequential() {
        let a = random_matrix(1000, 37, 1);
        let x = Vector::from_fn(37, |i| (i as f64).sin());
        let seq = a.matvec(&x);
        for threads in [1, 2, 3, 4, 7] {
            let par = par_matvec(&a, &x, threads);
            crate::assert_slices_close(par.as_slice(), seq.as_slice(), 1e-12);
        }
    }

    #[test]
    fn par_matvec_small_input_falls_back() {
        let a = random_matrix(10, 5, 2);
        let x = Vector::filled(5, 1.0);
        assert_eq!(par_matvec(&a, &x, 8), a.matvec(&x));
    }

    #[test]
    fn spawn_threshold_is_work_based() {
        // Exactly at the cutoff spawns; one element of work less does not.
        let cols = 64;
        let rows_at = PAR_SPAWN_WORK / cols;
        assert!(should_spawn(rows_at, cols, 4));
        assert!(!should_spawn(rows_at - 1, cols, 4));
        // Short-wide ranges count their columns: 8 rows of 4096 columns
        // is the same work as 512 rows of 64.
        assert!(should_spawn(8, PAR_SPAWN_WORK / 8, 4));
        assert!(!should_spawn(8, PAR_SPAWN_WORK / 8 - 1, 4));
        // A single thread or an empty range never spawns, however large.
        assert!(!should_spawn(1 << 20, 1 << 20, 1));
        assert!(!should_spawn(0, 1 << 20, 4));
    }

    #[test]
    fn par_matvec_rows_spawns_at_threshold_boundary() {
        // Shapes straddling the work cutoff must agree with the
        // sequential kernel bit-for-bit on both sides.
        let cols = 32;
        let rows = PAR_SPAWN_WORK / cols + 1;
        let a = random_matrix(rows, cols, 11);
        let x = Vector::from_fn(cols, |i| (i as f64).cos());
        // One row above the cutoff: spawns.
        assert!(should_spawn(rows, cols, 4));
        let par = par_matvec_rows(&a, &x, 0, rows, 4);
        assert_eq!(par, a.matvec_rows(&x, 0, rows));
        // Narrow the range below the cutoff: sequential fallback.
        assert!(!should_spawn(rows - 2, cols, 4));
        let par = par_matvec_rows(&a, &x, 1, rows - 1, 4);
        assert_eq!(par, a.matvec_rows(&x, 1, rows - 1));
    }

    #[test]
    fn par_matvec_more_threads_than_rows() {
        let a = random_matrix(300, 8, 3);
        let x = Vector::filled(8, 0.5);
        let par = par_matvec(&a, &x, 512);
        crate::assert_slices_close(par.as_slice(), a.matvec(&x).as_slice(), 1e-12);
    }

    #[test]
    fn par_matvec_rows_matches_range() {
        let a = random_matrix(900, 20, 9);
        let x = Vector::from_fn(20, |i| 1.0 - 0.05 * i as f64);
        for (begin, end) in [(0, 900), (100, 700), (512, 900), (300, 300)] {
            let seq = a.matvec_rows(&x, begin, end);
            for threads in [1, 3, 6] {
                let par = par_matvec_rows(&a, &x, begin, end, threads);
                crate::assert_slices_close(par.as_slice(), seq.as_slice(), 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad row range")]
    fn par_matvec_rows_rejects_bad_range() {
        let a = Matrix::identity(4);
        let x = Vector::zeros(4);
        let _ = par_matvec_rows(&a, &x, 2, 9, 2);
    }

    #[test]
    fn par_matmul_matches_sequential() {
        let a = random_matrix(120, 40, 4);
        let b = random_matrix(40, 25, 5);
        let seq = a.matmul(&b);
        for threads in [1, 2, 5] {
            let par = par_matmul(&a, &b, threads);
            assert!(par.max_abs_diff(&seq) < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let a = Matrix::identity(2);
        let x = Vector::zeros(2);
        let _ = par_matvec(&a, &x, 0);
    }
}
