//! Row-major dense matrix with row-range views.
//!
//! Coded computing slices data matrices into contiguous *row blocks* (one
//! per worker, then into chunks within a worker), so the representation is
//! row-major and every partitioning operation is a cheap slice view or a
//! single `memcpy`-like copy of contiguous storage.

use crate::error::LinalgError;
use crate::multivector::{matvec_multi_block, MultiVector};
use crate::vector::{dot_slices, Vector};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generating function over `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from nested `Vec` rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "row {i} has inconsistent length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix that takes ownership of a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor.
    #[must_use]
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r` as a slice.
    #[must_use]
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Immutable view of the contiguous row range `[begin, end)`.
    ///
    /// This is the primitive behind partitioning a data matrix into coded
    /// blocks and behind chunk-level work assignment: no copies involved.
    #[must_use]
    pub fn row_range(&self, begin: usize, end: usize) -> MatrixView<'_> {
        assert!(begin <= end && end <= self.rows, "row range out of bounds");
        MatrixView {
            rows: end - begin,
            cols: self.cols,
            data: &self.data[begin * self.cols..end * self.cols],
        }
    }

    /// Copies the row range `[begin, end)` into an owned matrix.
    #[must_use]
    pub fn row_block(&self, begin: usize, end: usize) -> Matrix {
        let view = self.row_range(begin, end);
        Matrix {
            rows: view.rows,
            cols: view.cols,
            data: view.data.to_vec(),
        }
    }

    /// Flat immutable view of the underlying storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its flat row-major buffer.
    #[must_use]
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Flat mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = self · x` (matrix–vector product).
    ///
    /// The single-vector product is the `count == 1` degenerate case of
    /// the batch-first kernel behind [`Matrix::matvec_multi_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &Vector) -> Vector {
        self.matvec_rows(x, 0, self.rows)
    }

    /// Matrix–vector product restricted to the row range `[begin, end)`.
    ///
    /// Workers computing a chunk of their partition call this so only the
    /// assigned rows are touched. Implemented as the single-member case
    /// of the stacked kernel, which routes through the same 4-wide
    /// unrolled dot product as the historical per-row loop — results are
    /// bit-identical to it.
    #[must_use]
    pub fn matvec_rows(&self, x: &Vector, begin: usize, end: usize) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec_rows: dimension mismatch");
        assert!(
            begin <= end && end <= self.rows,
            "matvec_rows: range out of bounds"
        );
        let mut out = vec![0.0; end - begin];
        matvec_multi_block(&self.data, self.cols, begin, end, x.as_slice(), 1, &mut out);
        Vector::from(out)
    }

    /// Stacked matrix–vector product: `self · xᵀ` for every member of a
    /// [`MultiVector`], over all rows.
    ///
    /// Returns a `rows × count` matrix (output-row-major, member-minor),
    /// matching the chunk-major × member-minor layout the coded reply
    /// path ships over the wire.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != self.cols()`.
    #[must_use]
    pub fn matvec_multi(&self, xs: &MultiVector) -> Matrix {
        self.matvec_multi_rows(xs, 0, self.rows)
    }

    /// Stacked matrix–vector product restricted to rows `[begin, end)`.
    ///
    /// This is the batch-first primitive of the kernel layer: the
    /// cache-blocked kernel tiles members in
    /// [`RHS_TILE`](crate::multivector::RHS_TILE)-wide groups inside
    /// row blocks sized by
    /// [`row_block_for`](crate::multivector::row_block_for), so each
    /// matrix row is loaded once per member tile instead of once per
    /// member. Each member's column of the result is bit-identical to
    /// `self.matvec_rows(member, begin, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != self.cols()` or the row range is out of
    /// bounds.
    #[must_use]
    pub fn matvec_multi_rows(&self, xs: &MultiVector, begin: usize, end: usize) -> Matrix {
        assert_eq!(xs.len(), self.cols, "matvec_multi_rows: dimension mismatch");
        assert!(
            begin <= end && end <= self.rows,
            "matvec_multi_rows: range out of bounds"
        );
        let count = xs.count();
        let mut out = vec![0.0; (end - begin) * count];
        matvec_multi_block(
            &self.data,
            self.cols,
            begin,
            end,
            xs.as_slice(),
            count,
            &mut out,
        );
        Matrix::from_flat(end - begin, count, out)
    }

    /// Dense matrix–matrix product `self · other`.
    ///
    /// Uses the classic i-k-j loop order so the inner loop streams over
    /// contiguous rows of `other` (cache-friendly for row-major storage).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let out_row_start = i * other.cols;
            for k in 0..self.cols {
                let a_ik = self.data[i * self.cols + k];
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let out_row = &mut out.data[out_row_start..out_row_start + other.cols];
                for (o, b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Vertically stacks matrices (all must share the column count).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when column counts differ, and
    /// [`LinalgError::InvalidArgument`] for an empty input list.
    pub fn vstack(blocks: &[&Matrix]) -> Result<Matrix, LinalgError> {
        let first = blocks
            .first()
            .ok_or_else(|| LinalgError::InvalidArgument("vstack of zero blocks".into()))?;
        let cols = first.cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            if b.cols != cols {
                return Err(LinalgError::ShapeMismatch {
                    expected: format!("{cols} columns"),
                    found: format!("{} columns", b.cols),
                });
            }
            data.extend_from_slice(&b.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "matrix axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element difference against another same-shape matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Number of bytes this matrix occupies when shipped over the simulated
    /// network (8 bytes per element; headers are modelled separately by the
    /// cluster communication layer).
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        (self.data.len() as u64) * 8
    }
}

/// Borrowed view over a contiguous row range of a [`Matrix`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Number of rows in the view.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` of the view as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &'a [f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Matrix–vector product over the viewed rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "view matvec: dimension mismatch");
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            out.push(dot_slices(self.row(r), xs));
        }
        Vector::from(out)
    }

    /// Copies the view into an owned matrix.
    #[must_use]
    pub fn to_owned(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![10.0, 11.0, 12.0],
        ])
    }

    #[test]
    fn identity_matvec_is_noop() {
        let x = Vector::from(vec![1.0, -2.0, 3.0]);
        let y = Matrix::identity(3).matvec(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn matvec_matches_manual() {
        let y = sample().matvec(&Vector::from(vec![1.0, 0.0, -1.0]));
        assert_eq!(y.as_slice(), &[-2.0, -2.0, -2.0, -2.0]);
    }

    #[test]
    fn matvec_rows_matches_full() {
        let m = sample();
        let x = Vector::from(vec![0.5, 1.0, -0.25]);
        let full = m.matvec(&x);
        let part = m.matvec_rows(&x, 1, 3);
        assert_eq!(part.as_slice(), &full.as_slice()[1..3]);
    }

    #[test]
    fn row_range_view_matches_block_copy() {
        let m = sample();
        let view = m.row_range(1, 3);
        let block = m.row_block(1, 3);
        assert_eq!(view.rows(), 2);
        assert_eq!(view.to_owned(), block);
        assert_eq!(view.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matmul_against_identity_and_manual() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id), m);

        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![19.0, 22.0], vec![43.0, 50.0]])
        );
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 4));
        assert_eq!(m.transpose().get(0, 3), 10.0);
    }

    #[test]
    fn vstack_roundtrip() {
        let m = sample();
        let top = m.row_block(0, 2);
        let bottom = m.row_block(2, 4);
        let stacked = Matrix::vstack(&[&top, &bottom]).unwrap();
        assert_eq!(stacked, m);
    }

    #[test]
    fn vstack_rejects_mismatched_columns() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        let err = Matrix::vstack(&[&a, &b]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn vstack_rejects_empty() {
        assert!(matches!(
            Matrix::vstack(&[]),
            Err(LinalgError::InvalidArgument(_))
        ));
    }

    #[test]
    fn axpy_and_scale() {
        let mut m = Matrix::identity(2);
        let n = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        m.axpy(2.0, &n);
        assert_eq!(m, Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 1.0]]));
        m.scale(0.5);
        assert_eq!(m, Matrix::from_rows(vec![vec![0.5, 1.0], vec![1.0, 0.5]]));
    }

    #[test]
    fn frobenius_and_diff() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        let n = Matrix::zeros(2, 2);
        assert_eq!(m.max_abs_diff(&n), 4.0);
    }

    #[test]
    fn payload_bytes_counts_elements() {
        assert_eq!(sample().payload_bytes(), 4 * 3 * 8);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn row_range_bounds_checked() {
        let _ = sample().row_range(2, 5);
    }

    #[test]
    fn from_flat_roundtrip() {
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matvec_multi_columns_match_single_bitwise() {
        let m = Matrix::from_fn(23, 13, |r, c| ((r * 7 + c * 3) % 11) as f64 * 0.5 - 2.0);
        let vs: Vec<Vector> = (0..6)
            .map(|i| Vector::from_fn(13, |j| ((i * 5 + j) % 9) as f64 * 0.25 - 1.0))
            .collect();
        let refs: Vec<&Vector> = vs.iter().collect();
        let xs = MultiVector::from_vectors(&refs);
        let stacked = m.matvec_multi(&xs);
        assert_eq!(stacked.shape(), (23, 6));
        for (i, v) in vs.iter().enumerate() {
            let single = m.matvec(v);
            for r in 0..23 {
                assert_eq!(
                    stacked.get(r, i),
                    single.as_slice()[r],
                    "row {r} member {i}"
                );
            }
        }
    }

    #[test]
    fn matvec_multi_rows_matches_full() {
        let m = Matrix::from_fn(19, 8, |r, c| (r + c) as f64);
        let xs = MultiVector::from_fn(3, 8, |i, j| (i * 8 + j) as f64 * 0.1);
        let full = m.matvec_multi(&xs);
        let part = m.matvec_multi_rows(&xs, 4, 11);
        for r in 4..11 {
            for c in 0..3 {
                assert_eq!(part.get(r - 4, c), full.get(r, c));
            }
        }
    }
}
