//! Dense `f64` vector with the operations the coded-computing stack needs.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// A dense, heap-allocated `f64` vector.
///
/// `Vector` is a thin wrapper over `Vec<f64>` adding the numerical
/// operations used by gradient descent, power iteration, and MDS decoding.
/// It deliberately keeps the representation public-ish (via `as_slice` /
/// `as_mut_slice`) so hot loops can operate on raw slices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` with every element equal to `value`.
    #[must_use]
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector from a generating function of the index.
    #[must_use]
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable slice view of the elements.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable slice view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        dot_slices(&self.data, &other.data)
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm (sum of absolute values).
    #[must_use]
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Infinity norm (maximum absolute value); 0 for the empty vector.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` primitive).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (y, x) in self.data.iter_mut().zip(other.data.iter()) {
            *y += alpha * x;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns a normalized copy (unit L2 norm).
    ///
    /// Returns a zero vector unchanged (rather than dividing by zero), which
    /// is the behaviour power iteration wants when it hits a dead start.
    #[must_use]
    pub fn normalized(&self) -> Vector {
        let n = self.norm2();
        if n == 0.0 {
            self.clone()
        } else {
            let mut v = self.clone();
            v.scale(1.0 / n);
            v
        }
    }

    /// Element-wise absolute difference's maximum — convenient convergence
    /// measure for iterative workloads.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "max_abs_diff: length mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Dot product of two equal-length slices.
///
/// Split into a free function so the matvec kernels can call it on row
/// slices without constructing `Vector`s. Unrolled by 4 to give LLVM an
/// easy vectorization shape (see the perf-book guidance on hot loops).
#[must_use]
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    s0 + s1 + s2 + s3 + tail
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        Vector::from_fn(self.len(), |i| self.data[i] + rhs.data[i])
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        Vector::from_fn(self.len(), |i| self.data[i] - rhs.data[i])
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        Vector::from_fn(self.len(), |i| self.data[i] * rhs)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(5);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_matches_manual() {
        let a = Vector::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Vector::from(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.dot(&b), 5.0 + 8.0 + 9.0 + 8.0 + 5.0);
    }

    #[test]
    fn dot_slices_handles_tails() {
        // Lengths 0..=9 cover every unroll remainder.
        for n in 0..10usize {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5).collect();
            let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_slices(&a, &b) - expect).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(Vector::zeros(0).norm_inf(), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = Vector::from(vec![1.0, 1.0]);
        let x = Vector::from(vec![2.0, 3.0]);
        y.axpy(2.0, &x);
        assert_eq!(y.as_slice(), &[5.0, 7.0]);
        y.scale(0.5);
        assert_eq!(y.as_slice(), &[2.5, 3.5]);
    }

    #[test]
    fn normalized_unit_norm() {
        let v = Vector::from(vec![3.0, 4.0]).normalized();
        assert!((v.norm2() - 1.0).abs() < 1e-12);
        // Zero vector stays zero.
        let z = Vector::zeros(3).normalized();
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_diff_and_sum() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![1.5, 2.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn indexing() {
        let mut v = Vector::from(vec![1.0, 2.0]);
        v[1] = 9.0;
        assert_eq!(v[1], 9.0);
    }
}
