//! Property tests for the cluster simulator's conservation laws.

use proptest::prelude::*;
use s2c2_cluster::metrics::{JobMetrics, RoundMetrics};
use s2c2_cluster::sim::{kth_completion, round_completion_times, ClusterSim};
use s2c2_cluster::ClusterSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn completion_times_monotone_in_rows(
        n in 2usize..=16,
        rows_base in 1usize..=500,
        cols in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let spec = ClusterSpec::builder(n).compute_bound().seed(seed).stragglers(&[], 0.2).build();
        let mut sim = ClusterSim::new(spec);
        sim.begin_iteration(0);
        // Same worker, more rows -> strictly later completion.
        let mut a = vec![0usize; n];
        let mut b = vec![0usize; n];
        a[0] = rows_base;
        b[0] = rows_base * 2;
        let ta = round_completion_times(&sim, 64, &a, cols, 8);
        let tb = round_completion_times(&sim, 64, &b, cols, 8);
        prop_assert!(tb[0] > ta[0], "{} !> {}", tb[0], ta[0]);
        // Idle workers never respond.
        for &t in ta.iter().skip(1) {
            prop_assert!(t.is_infinite());
        }
    }

    #[test]
    fn kth_completion_is_monotone_in_k(
        times in proptest::collection::vec(0.01f64..100.0, 1..20),
    ) {
        for k in 1..times.len() {
            prop_assert!(kth_completion(&times, k) <= kth_completion(&times, k + 1));
        }
    }

    #[test]
    fn speeds_are_always_positive_and_finite(
        n in 1usize..=12,
        iters in 1usize..=40,
        seed in any::<u64>(),
    ) {
        let spec = ClusterSpec::builder(n)
            .seed(seed)
            .cloud(&s2c2_trace::CloudTraceConfig::volatile())
            .build();
        let mut sim = ClusterSim::new(spec);
        for iter in 0..iters {
            for &s in sim.begin_iteration(iter) {
                prop_assert!(s.is_finite() && s > 0.0);
            }
        }
    }

    #[test]
    fn job_metrics_aggregate_consistently(
        latencies in proptest::collection::vec(0.0f64..10.0, 1..30),
    ) {
        let mut job = JobMetrics::new();
        for (i, &l) in latencies.iter().enumerate() {
            let mut r = RoundMetrics::new(i, 3);
            r.latency = l;
            r.assigned_rows = vec![10, 10, 10];
            r.computed_rows = vec![10, 10, 5];
            r.useful_rows = vec![10, 8, 0];
            job.push(r);
        }
        let total: f64 = latencies.iter().sum();
        prop_assert!((job.total_latency() - total).abs() < 1e-9);
        prop_assert!((job.mean_latency() - total / latencies.len() as f64).abs() < 1e-9);
        // Wasted = (2 + 5) per round.
        prop_assert_eq!(job.total_wasted_rows(), 7 * latencies.len());
    }
}
