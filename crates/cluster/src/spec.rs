//! Cluster specification and scenario builders.
//!
//! A [`ClusterSpec`] bundles per-worker speed processes with the
//! communication/compute cost models. The builder provides the paper's
//! two evaluation scenarios directly:
//!
//! * [`ClusterSpecBuilder::stragglers`] — the controlled-cluster setup
//!   (§7.1): chosen workers are ≥5× slower; all workers carry up to ±20%
//!   iteration-to-iteration jitter.
//! * [`ClusterSpecBuilder::cloud`] — the DigitalOcean setup (§7.2):
//!   every worker follows a regime-switching cloud trace (calm or
//!   volatile preset from `s2c2-trace`).

use crate::comm::{CommModel, ComputeModel};
use s2c2_trace::model::{JitterSpeed, StragglerSpeed};
use s2c2_trace::{BoxedSpeedModel, CloudTraceConfig};

/// Full description of a simulated cluster.
pub struct ClusterSpec {
    /// Per-worker speed processes.
    pub workers: Vec<BoxedSpeedModel>,
    /// Link model for every master↔worker / worker↔worker transfer.
    pub comm: CommModel,
    /// Worker computation model.
    pub compute: ComputeModel,
    /// Master decode throughput in flops/second.
    pub decode_flops_per_sec: f64,
}

impl ClusterSpec {
    /// Starts a builder for an `n`-worker cluster.
    #[must_use]
    pub fn builder(n: usize) -> ClusterSpecBuilder {
        ClusterSpecBuilder::new(n)
    }

    /// Number of workers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.workers.len()
    }
}

impl Clone for ClusterSpec {
    fn clone(&self) -> Self {
        ClusterSpec {
            workers: self.workers.clone(),
            comm: self.comm,
            compute: self.compute,
            decode_flops_per_sec: self.decode_flops_per_sec,
        }
    }
}

impl std::fmt::Debug for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSpec")
            .field("workers", &self.workers.len())
            .field("comm", &self.comm)
            .field("compute", &self.compute)
            .field("decode_flops_per_sec", &self.decode_flops_per_sec)
            .finish()
    }
}

/// Builder for [`ClusterSpec`].
pub struct ClusterSpecBuilder {
    n: usize,
    models: Vec<Option<BoxedSpeedModel>>,
    comm: CommModel,
    compute: ComputeModel,
    decode_flops_per_sec: f64,
    straggler_slowdown: f64,
    seed: u64,
}

impl ClusterSpecBuilder {
    fn new(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one worker");
        ClusterSpecBuilder {
            n,
            models: (0..n).map(|_| None).collect(),
            comm: CommModel::default(),
            compute: ComputeModel::default(),
            decode_flops_per_sec: 1e9,
            straggler_slowdown: 5.0,
            seed: 0xC10D,
        }
    }

    /// Sets the RNG seed that derives per-worker model seeds.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the link model.
    #[must_use]
    pub fn comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Overrides the worker compute model.
    #[must_use]
    pub fn compute(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }

    /// Configures a compute-dominated cluster: near-zero link latency and
    /// a deliberately slow worker throughput, so per-row compute
    /// differences dominate timing even for unit-test-sized matrices.
    /// (Production-scale matrices get the same effect under the default
    /// models; this keeps small tests faithful to the paper's
    /// compute-bound regime.)
    #[must_use]
    pub fn compute_bound(mut self) -> Self {
        self.comm = CommModel::new(1e12, 1e-9);
        self.compute = ComputeModel::new(1e5);
        self
    }

    /// Overrides the master decode throughput (flops/s).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    #[must_use]
    pub fn decode_flops_per_sec(mut self, flops: f64) -> Self {
        assert!(flops > 0.0, "decode throughput must be positive");
        self.decode_flops_per_sec = flops;
        self
    }

    /// Overrides the slowdown factor used by [`Self::stragglers`]
    /// (paper definition: "at least 5× slower"; default 5.0).
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown >= 1`.
    #[must_use]
    pub fn straggler_slowdown(mut self, slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        self.straggler_slowdown = slowdown;
        self
    }

    /// Installs an explicit speed model for one worker.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= n`.
    #[must_use]
    pub fn worker_model(mut self, worker: usize, model: BoxedSpeedModel) -> Self {
        self.models[worker] = Some(model);
        self
    }

    /// Controlled-cluster scenario (§7.1): workers in `ids` become
    /// persistent stragglers (`straggler_slowdown`× slower); non-straggler
    /// speeds spread *statically* across `[1 − jitter, 1]` (the paper's
    /// "up to 20% variation between their processing speeds" is
    /// heterogeneity between nodes, not fresh noise every iteration),
    /// plus a small ±3% iteration-to-iteration wobble.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn stragglers(mut self, ids: &[usize], jitter: f64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for &id in ids {
            assert!(id < self.n, "straggler id {id} out of range");
        }
        for w in 0..self.n {
            let seed = self.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            let base = if jitter == 0.0 {
                1.0
            } else {
                rng.gen_range(1.0 - jitter..=1.0)
            };
            let wobble = if jitter == 0.0 { 0.0 } else { 0.03 };
            let model: BoxedSpeedModel = if ids.contains(&w) {
                Box::new(StragglerSpeed::new(
                    base,
                    wobble,
                    self.straggler_slowdown,
                    seed,
                ))
            } else {
                Box::new(JitterSpeed::new(base, wobble, seed))
            };
            self.models[w] = Some(model);
        }
        self
    }

    /// Cloud scenario (§7.2): every worker follows a regime-switching
    /// trace drawn from `config` (use [`CloudTraceConfig::calm`] /
    /// [`CloudTraceConfig::volatile`] for the paper's two environments).
    #[must_use]
    pub fn cloud(mut self, config: &CloudTraceConfig) -> Self {
        for w in 0..self.n {
            self.models[w] = Some(Box::new(config.model_for_node(w, self.seed)));
        }
        self
    }

    /// Finalizes the spec. Workers without an explicit model get a
    /// constant-speed model at 1.0 (perfect homogeneous cluster).
    #[must_use]
    pub fn build(self) -> ClusterSpec {
        use s2c2_trace::model::ConstantSpeed;
        ClusterSpec {
            workers: self
                .models
                .into_iter()
                .map(|m| m.unwrap_or_else(|| Box::new(ConstantSpeed::new(1.0)) as BoxedSpeedModel))
                .collect(),
            comm: self.comm,
            compute: self.compute,
            decode_flops_per_sec: self.decode_flops_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_homogeneous() {
        let mut spec = ClusterSpec::builder(4).build();
        assert_eq!(spec.n(), 4);
        for w in spec.workers.iter_mut() {
            assert_eq!(w.speed_at(0), 1.0);
        }
    }

    #[test]
    fn straggler_scenario_slows_chosen_workers() {
        let mut spec = ClusterSpec::builder(6)
            .straggler_slowdown(5.0)
            .stragglers(&[1, 4], 0.0)
            .build();
        let speeds: Vec<f64> = spec.workers.iter_mut().map(|m| m.speed_at(0)).collect();
        assert_eq!(speeds[0], 1.0);
        assert!((speeds[1] - 0.2).abs() < 1e-12);
        assert!((speeds[4] - 0.2).abs() < 1e-12);
        assert_eq!(speeds[5], 1.0);
    }

    #[test]
    fn heterogeneity_is_static_with_small_wobble() {
        let mut spec = ClusterSpec::builder(8).stragglers(&[], 0.2).build();
        for (w, m) in spec.workers.iter_mut().enumerate() {
            let samples: Vec<f64> = (0..50).map(|i| m.speed_at(i)).collect();
            // Static base in [0.8, 1.0], wobble <= 3%.
            let max = samples.iter().cloned().fold(f64::MIN, f64::max);
            let min = samples.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max <= 1.0 + 1e-12, "worker {w} max {max}");
            assert!(min >= 0.8 * 0.97 - 1e-12, "worker {w} min {min}");
            assert!(
                max / min <= 1.0 / 0.97 + 1e-9,
                "worker {w} wobble too large"
            );
        }
        // Bases actually differ across workers.
        let mut bases: Vec<f64> = spec.workers.iter_mut().map(|m| m.speed_at(0)).collect();
        bases.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(bases[7] - bases[0] > 0.02, "heterogeneous bases");
    }

    #[test]
    fn cloud_scenario_produces_varied_speeds() {
        let mut spec = ClusterSpec::builder(10)
            .seed(7)
            .cloud(&CloudTraceConfig::volatile())
            .build();
        let mut distinct = std::collections::BTreeSet::new();
        for m in spec.workers.iter_mut() {
            for i in 0..50 {
                distinct.insert((m.speed_at(i) * 1e6) as i64);
            }
        }
        assert!(distinct.len() > 20, "cloud speeds should vary");
    }

    #[test]
    fn spec_clone_is_independent() {
        let spec = ClusterSpec::builder(2).stragglers(&[0], 0.1).build();
        let mut a = spec.clone();
        let mut b = spec.clone();
        for i in 0..10 {
            assert_eq!(a.workers[0].speed_at(i), b.workers[0].speed_at(i));
        }
    }

    #[test]
    #[should_panic(expected = "straggler id 9 out of range")]
    fn bad_straggler_id_panics() {
        let _ = ClusterSpec::builder(4).stragglers(&[9], 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ClusterSpec::builder(0);
    }
}
