//! Cluster execution engines for S²C².
//!
//! The paper evaluates on a 13-node Xeon/InfiniBand cluster and on
//! DigitalOcean droplets. This crate replaces both with two engines that
//! the scheduling layer (`s2c2-core`) drives interchangeably:
//!
//! * [`sim::ClusterSim`] — a deterministic analytic/discrete-event
//!   simulator. Worker speeds come from `s2c2-trace` models sampled once
//!   per iteration (the paper's measurement granularity); compute time is
//!   `elements / (relative_speed · throughput)`; transfers are
//!   `latency + bytes / bandwidth`; master-side decode is charged in
//!   flops. Strategies perform the *numeric* work themselves (via
//!   `s2c2-coding`) — the simulator is the *timing* oracle, which is what
//!   makes experiments reproducible and fast while remaining end-to-end
//!   verifiable numerically.
//! * [`threaded::ThreadedCluster`] — a real master/worker executor: one OS
//!   thread per worker, crossbeam channels for task/result message
//!   passing, injected per-worker slowdowns. Integration tests run the
//!   same strategies on this engine to validate the concurrency path
//!   (ordering, lost-straggler behaviour, shutdown).
//!
//! [`metrics`] defines the per-round and per-job accounting every figure
//! of the paper is computed from: completion latency, per-worker wasted
//! computation (Figs 9/11), bytes moved by rebalancing (Figs 3/8/10), and
//! effective storage. [`churn`] adds epoch-sampled worker availability
//! chains for long-lived shared pools (the `s2c2-serve` engine).

#![warn(missing_docs)]

pub mod churn;
pub mod comm;
pub mod metrics;
pub mod sim;
pub mod spec;
pub mod threaded;

pub use churn::ChurnProcess;
pub use comm::{CommModel, ComputeModel};
pub use metrics::{JobMetrics, RoundMetrics};
pub use sim::ClusterSim;
pub use spec::ClusterSpec;
