//! The deterministic cluster timing simulator.
//!
//! `ClusterSim` answers one question for the scheduling layer: *given this
//! iteration's per-worker speeds, how long does each piece of an iteration
//! take?* Strategies compose these primitives into their own round logic
//! (wait-for-all, fastest-k-of-n, timeout-and-reassign, speculative
//! relaunch) and perform the actual numeric work through `s2c2-coding`.
//!
//! Speeds are sampled once per iteration — the granularity at which the
//! paper both measures (`ℓᵢ(iter)/tᵢ(iter)`, §6.2) and predicts. Within an
//! iteration a worker's speed is constant, so a task of `E` elements on a
//! worker at relative speed `s` takes `E / (s · throughput)` seconds.

use crate::comm::{CommModel, ComputeModel};
use crate::spec::ClusterSpec;
use s2c2_trace::BoxedSpeedModel;

/// Timing simulator over a [`ClusterSpec`].
pub struct ClusterSim {
    models: Vec<BoxedSpeedModel>,
    comm: CommModel,
    compute: ComputeModel,
    decode_flops_per_sec: f64,
    speeds: Vec<f64>,
    iteration: Option<usize>,
}

impl ClusterSim {
    /// Builds the simulator from a spec.
    #[must_use]
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.n();
        ClusterSim {
            models: spec.workers,
            comm: spec.comm,
            compute: spec.compute,
            decode_flops_per_sec: spec.decode_flops_per_sec,
            speeds: vec![1.0; n],
            iteration: None,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.models.len()
    }

    /// Samples every worker's speed for `iteration` and caches them.
    ///
    /// Must be called once per iteration before the timing queries.
    /// Returns the sampled (actual) speeds — the *scheduler* should not
    /// look at these unless it is deliberately playing the oracle
    /// ("S²C² knowing the exact speeds" in Figs 6/7); honest strategies
    /// use predictions derived from previous observations instead.
    pub fn begin_iteration(&mut self, iteration: usize) -> &[f64] {
        for (m, s) in self.models.iter_mut().zip(self.speeds.iter_mut()) {
            *s = m.speed_at(iteration);
        }
        self.iteration = Some(iteration);
        &self.speeds
    }

    /// Actual speeds of the current iteration (oracle access).
    ///
    /// # Panics
    ///
    /// Panics if no iteration has begun.
    #[must_use]
    pub fn speeds(&self) -> &[f64] {
        assert!(self.iteration.is_some(), "no iteration in progress");
        &self.speeds
    }

    /// Current iteration index.
    #[must_use]
    pub fn iteration(&self) -> Option<usize> {
        self.iteration
    }

    /// Time for `worker` to compute over `rows × cols` elements at its
    /// current-iteration speed.
    ///
    /// # Panics
    ///
    /// Panics if no iteration has begun or `worker` is out of range.
    #[must_use]
    pub fn compute_time(&self, worker: usize, rows: usize, cols: usize) -> f64 {
        assert!(self.iteration.is_some(), "no iteration in progress");
        self.compute.time((rows * cols) as u64, self.speeds[worker])
    }

    /// Time for a fraction of the same work (used when a task is cancelled
    /// partway: the paper's reactive baselines care how much was done).
    #[must_use]
    pub fn partial_compute_elements(&self, worker: usize, elapsed: f64) -> f64 {
        assert!(self.iteration.is_some(), "no iteration in progress");
        elapsed * self.speeds[worker] * self.compute.elements_per_sec
    }

    /// One-link transfer time for `bytes`.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.comm.transfer_time(bytes)
    }

    /// Master-side decode time for `flops` floating point operations.
    #[must_use]
    pub fn decode_time(&self, flops: f64) -> f64 {
        flops.max(0.0) / self.decode_flops_per_sec
    }

    /// Link model (for strategies that need custom accounting).
    #[must_use]
    pub fn comm(&self) -> CommModel {
        self.comm
    }

    /// Compute model.
    #[must_use]
    pub fn compute_model(&self) -> ComputeModel {
        self.compute
    }
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("workers", &self.models.len())
            .field("iteration", &self.iteration)
            .finish()
    }
}

/// Completion-time helper for the common round shape: broadcast an input,
/// compute, send back a result.
///
/// Returns, for each worker, the absolute time (from iteration start) at
/// which the master holds that worker's result; workers assigned zero
/// rows report `f64::INFINITY` (they never respond).
///
/// * `input_bytes` — broadcast payload (the iteration's `x` vector).
/// * `rows[i]`, `cols` — assigned work shape per worker.
/// * `result_bytes_per_row` — response payload scale (8 for a matvec
///   result, `8 · output_cols` for matrix products).
#[must_use]
pub fn round_completion_times(
    sim: &ClusterSim,
    input_bytes: u64,
    rows: &[usize],
    cols: usize,
    result_bytes_per_row: u64,
) -> Vec<f64> {
    assert_eq!(rows.len(), sim.n(), "rows per worker length mismatch");
    (0..sim.n())
        .map(|w| {
            if rows[w] == 0 {
                return f64::INFINITY;
            }
            let receive = sim.transfer_time(input_bytes);
            let work = sim.compute_time(w, rows[w], cols);
            let reply = sim.transfer_time(rows[w] as u64 * result_bytes_per_row);
            receive + work + reply
        })
        .collect()
}

/// The time at which the `need`-th fastest of `times` completes
/// (`f64::INFINITY` if fewer than `need` finite entries exist).
///
/// # Panics
///
/// Panics if `need == 0`.
#[must_use]
pub fn kth_completion(times: &[f64], need: usize) -> f64 {
    assert!(need > 0, "need at least one completion");
    let mut finite: Vec<f64> = times.iter().copied().filter(|t| t.is_finite()).collect();
    if finite.len() < need {
        return f64::INFINITY;
    }
    finite.sort_by(|a, b| a.total_cmp(b));
    finite[need - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    fn sim_with_stragglers() -> ClusterSim {
        let spec = ClusterSpec::builder(4)
            .straggler_slowdown(5.0)
            .stragglers(&[3], 0.0)
            .build();
        ClusterSim::new(spec)
    }

    #[test]
    fn begin_iteration_caches_speeds() {
        let mut sim = sim_with_stragglers();
        let speeds = sim.begin_iteration(0).to_vec();
        assert_eq!(speeds.len(), 4);
        assert_eq!(speeds[0], 1.0);
        assert!((speeds[3] - 0.2).abs() < 1e-12);
        assert_eq!(sim.speeds(), &speeds[..]);
        assert_eq!(sim.iteration(), Some(0));
    }

    #[test]
    fn compute_time_reflects_straggler() {
        let mut sim = sim_with_stragglers();
        sim.begin_iteration(0);
        let fast = sim.compute_time(0, 1000, 100);
        let slow = sim.compute_time(3, 1000, 100);
        assert!((slow / fast - 5.0).abs() < 1e-9);
    }

    #[test]
    fn round_completion_shape() {
        let mut sim = sim_with_stragglers();
        sim.begin_iteration(0);
        let times = round_completion_times(&sim, 800, &[100, 100, 0, 100], 50, 8);
        assert!(times[0].is_finite());
        assert!(times[2].is_infinite(), "idle worker never responds");
        assert!(times[3] > times[0], "straggler responds later");
        // Identical assignments on identical speeds complete together.
        assert!((times[0] - times[1]).abs() < 1e-12);
    }

    #[test]
    fn kth_completion_selects_correctly() {
        let times = vec![3.0, 1.0, f64::INFINITY, 2.0];
        assert_eq!(kth_completion(&times, 1), 1.0);
        assert_eq!(kth_completion(&times, 3), 3.0);
        assert!(kth_completion(&times, 4).is_infinite());
    }

    #[test]
    fn decode_time_scales() {
        let mut sim = sim_with_stragglers();
        sim.begin_iteration(0);
        assert_eq!(sim.decode_time(0.0), 0.0);
        assert!(sim.decode_time(1e9) > sim.decode_time(1e6));
    }

    #[test]
    fn partial_compute_elements_linear_in_time() {
        let mut sim = sim_with_stragglers();
        sim.begin_iteration(0);
        let e1 = sim.partial_compute_elements(0, 0.5);
        let e2 = sim.partial_compute_elements(0, 1.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        // Straggler does 5x less in the same time.
        let es = sim.partial_compute_elements(3, 1.0);
        assert!((e2 / es - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no iteration in progress")]
    fn timing_requires_begun_iteration() {
        let sim = sim_with_stragglers();
        let _ = sim.compute_time(0, 1, 1);
    }

    #[test]
    fn speeds_advance_with_iterations() {
        let spec = ClusterSpec::builder(2).stragglers(&[], 0.2).build();
        let mut sim = ClusterSim::new(spec);
        let s0 = sim.begin_iteration(0).to_vec();
        let s1 = sim.begin_iteration(1).to_vec();
        // Jitter makes consecutive iterations differ almost surely.
        assert_ne!(s0, s1);
    }
}
