//! Per-round and per-job accounting.
//!
//! Every figure in the paper's evaluation is a function of these records:
//!
//! * Figs 1, 6, 7, 8, 10, 12, 13 — (relative) total completion latency.
//! * Figs 9, 11 — per-worker wasted computation: rows a worker computed
//!   that the master did not use (ignored by the fastest-k rule, or
//!   cancelled after a timeout reassignment).
//! * Fig 3 — effective storage: bytes of data partitions a node must hold
//!   (or receive at runtime) to serve its assignments.

/// Metrics for one iteration (round) of a distributed job.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Iteration index.
    pub iteration: usize,
    /// Wall-clock (simulated) completion latency of the round, including
    /// input broadcast, compute, result return, and master decode.
    pub latency: f64,
    /// Rows assigned to each worker at the start of the round (including
    /// speculative / reassigned work).
    pub assigned_rows: Vec<usize>,
    /// Rows each worker actually computed (a cancelled task counts only
    /// the portion finished before cancellation).
    pub computed_rows: Vec<usize>,
    /// Rows per worker that contributed to the decoded result.
    pub useful_rows: Vec<usize>,
    /// Bytes moved for data *rebalancing* during this round (replication
    /// fallbacks, over-decomposition migrations). Broadcast of the input
    /// vector and result returns are charged in `latency` but not counted
    /// here — this field measures the data-movement overhead that coded
    /// strategies avoid.
    pub rebalance_bytes: u64,
    /// Master-side decode time included in `latency`.
    pub decode_time: f64,
    /// Per-worker response time observed by the master (`None` when a
    /// worker was idle or its result never arrived) — the input to speed
    /// estimation (§6.2).
    pub response_times: Vec<Option<f64>>,
}

impl RoundMetrics {
    /// Creates an empty record for `workers` workers.
    #[must_use]
    pub fn new(iteration: usize, workers: usize) -> Self {
        RoundMetrics {
            iteration,
            latency: 0.0,
            assigned_rows: vec![0; workers],
            computed_rows: vec![0; workers],
            useful_rows: vec![0; workers],
            rebalance_bytes: 0,
            decode_time: 0.0,
            response_times: vec![None; workers],
        }
    }

    /// Number of workers the round tracked.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.assigned_rows.len()
    }

    /// Rows computed but not used, per worker.
    #[must_use]
    pub fn wasted_rows(&self) -> Vec<usize> {
        self.computed_rows
            .iter()
            .zip(self.useful_rows.iter())
            .map(|(c, u)| c.saturating_sub(*u))
            .collect()
    }

    /// Fraction of each worker's computed rows that were wasted
    /// (0 when the worker computed nothing).
    #[must_use]
    pub fn wasted_fraction(&self) -> Vec<f64> {
        self.computed_rows
            .iter()
            .zip(self.useful_rows.iter())
            .map(|(c, u)| {
                if *c == 0 {
                    0.0
                } else {
                    (c.saturating_sub(*u)) as f64 / *c as f64
                }
            })
            .collect()
    }

    /// Total wasted rows across workers.
    #[must_use]
    pub fn total_wasted_rows(&self) -> usize {
        self.wasted_rows().iter().sum()
    }

    /// Sanity invariant: useful ≤ computed ≤ assigned per worker.
    ///
    /// Strategies call this in debug builds; tests assert it always.
    #[must_use]
    pub fn conserves_work(&self) -> bool {
        self.computed_rows
            .iter()
            .zip(self.useful_rows.iter())
            .zip(self.assigned_rows.iter())
            .all(|((c, u), a)| u <= c && c <= a)
    }
}

/// Accumulated metrics over a whole iterative job.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    rounds: Vec<RoundMetrics>,
}

impl JobMetrics {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        JobMetrics { rounds: Vec::new() }
    }

    /// Appends a round record.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the record violates work conservation.
    pub fn push(&mut self, round: RoundMetrics) {
        debug_assert!(round.conserves_work(), "round violates work conservation");
        self.rounds.push(round);
    }

    /// All recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> &[RoundMetrics] {
        &self.rounds
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` when no rounds are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total completion latency (sum over rounds — iterations are
    /// serialized by the gradient-descent/power-iteration dependency).
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.rounds.iter().map(|r| r.latency).sum()
    }

    /// Mean per-round latency.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.total_latency() / self.rounds.len() as f64
        }
    }

    /// Per-worker wasted-computation fraction over the whole job
    /// (Figs 9/11): wasted rows divided by computed rows.
    #[must_use]
    pub fn wasted_fraction_per_worker(&self) -> Vec<f64> {
        let workers = self.rounds.first().map_or(0, RoundMetrics::workers);
        let mut computed = vec![0usize; workers];
        let mut wasted = vec![0usize; workers];
        for r in &self.rounds {
            for w in 0..workers {
                computed[w] += r.computed_rows[w];
                wasted[w] += r.computed_rows[w].saturating_sub(r.useful_rows[w]);
            }
        }
        computed
            .iter()
            .zip(wasted.iter())
            .map(|(c, w)| if *c == 0 { 0.0 } else { *w as f64 / *c as f64 })
            .collect()
    }

    /// Aggregate wasted rows across the job.
    #[must_use]
    pub fn total_wasted_rows(&self) -> usize {
        self.rounds
            .iter()
            .map(RoundMetrics::total_wasted_rows)
            .sum()
    }

    /// Total rebalancing traffic (bytes).
    #[must_use]
    pub fn total_rebalance_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.rebalance_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_round() -> RoundMetrics {
        let mut r = RoundMetrics::new(0, 3);
        r.latency = 2.0;
        r.assigned_rows = vec![100, 100, 50];
        r.computed_rows = vec![100, 80, 50];
        r.useful_rows = vec![100, 0, 50];
        r.response_times = vec![Some(1.0), None, Some(2.0)];
        r
    }

    #[test]
    fn wasted_accounting() {
        let r = sample_round();
        assert_eq!(r.wasted_rows(), vec![0, 80, 0]);
        assert_eq!(r.total_wasted_rows(), 80);
        let f = r.wasted_fraction();
        assert_eq!(f[0], 0.0);
        assert!((f[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_detects_violations() {
        let mut r = sample_round();
        assert!(r.conserves_work());
        r.useful_rows[1] = 90; // more useful than computed
        assert!(!r.conserves_work());
        r.useful_rows[1] = 0;
        r.computed_rows[1] = 150; // more computed than assigned
        assert!(!r.conserves_work());
    }

    #[test]
    fn job_aggregation() {
        let mut job = JobMetrics::new();
        for i in 0..4 {
            let mut r = sample_round();
            r.iteration = i;
            job.push(r);
        }
        assert_eq!(job.len(), 4);
        assert!((job.total_latency() - 8.0).abs() < 1e-12);
        assert!((job.mean_latency() - 2.0).abs() < 1e-12);
        assert_eq!(job.total_wasted_rows(), 320);
        let wf = job.wasted_fraction_per_worker();
        assert_eq!(wf[0], 0.0);
        assert!((wf[1] - 1.0).abs() < 1e-12);
        assert_eq!(wf[2], 0.0);
    }

    #[test]
    fn empty_job_is_safe() {
        let job = JobMetrics::new();
        assert!(job.is_empty());
        assert_eq!(job.total_latency(), 0.0);
        assert_eq!(job.mean_latency(), 0.0);
        assert!(job.wasted_fraction_per_worker().is_empty());
    }

    #[test]
    fn zero_computed_wastes_nothing() {
        let r = RoundMetrics::new(0, 2);
        assert_eq!(r.wasted_fraction(), vec![0.0, 0.0]);
        assert!(r.conserves_work());
    }
}
