//! Worker churn: a seeded on/off availability process per worker.
//!
//! The paper's clusters are static, but a service engine multiplexing
//! many jobs over one long-lived pool (`s2c2-serve`) must survive
//! workers leaving and rejoining — preemptions, spot reclaims, crashes.
//! [`ChurnProcess`] models availability as an independent two-state
//! Markov chain per worker, advanced once per *epoch* (the same
//! granularity at which the speed models are sampled): an up worker
//! fails with probability `p_fail`, a down worker recovers with
//! probability `p_recover`.
//!
//! A configurable `min_up` floor keeps scenarios feasible: after each
//! epoch's transitions, if fewer than `min_up` workers remain up, the
//! longest-down workers are recovered (deterministically) until the
//! floor holds. This mirrors real operations — an operator replaces
//! capacity when the pool dips below its serving threshold — and lets
//! experiments pick churn rates without accidentally making every coded
//! job infeasible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Independent per-worker on/off availability chains, epoch-sampled.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    up: Vec<bool>,
    /// Epoch at which each worker last changed state (for the
    /// deterministic longest-down recovery rule).
    since: Vec<usize>,
    p_fail: f64,
    p_recover: f64,
    min_up: usize,
    last_epoch: Option<usize>,
    rng: StdRng,
}

impl ChurnProcess {
    /// Builds the process for `n` workers, all initially up.
    ///
    /// * `p_fail` — per-epoch probability an up worker goes down.
    /// * `p_recover` — per-epoch probability a down worker comes back.
    /// * `min_up` — availability floor enforced after every epoch.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, a probability is outside `[0, 1]`, or
    /// `min_up > n`.
    #[must_use]
    pub fn new(n: usize, p_fail: f64, p_recover: f64, min_up: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert!(
            (0.0..=1.0).contains(&p_fail) && (0.0..=1.0).contains(&p_recover),
            "churn probabilities must be in [0, 1]"
        );
        assert!(min_up <= n, "min_up cannot exceed the pool size");
        ChurnProcess {
            up: vec![true; n],
            since: vec![0; n],
            p_fail,
            p_recover,
            min_up,
            last_epoch: None,
            rng: StdRng::seed_from_u64(seed ^ 0xC4_12_2A_57),
        }
    }

    /// A churn-free pool: every worker stays up forever.
    #[must_use]
    pub fn none(n: usize) -> Self {
        ChurnProcess::new(n, 0.0, 1.0, n, 0)
    }

    /// Number of workers tracked.
    #[must_use]
    pub fn n(&self) -> usize {
        self.up.len()
    }

    /// Current availability mask (no time advance).
    #[must_use]
    pub fn up(&self) -> &[bool] {
        &self.up
    }

    /// Number of currently-up workers.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Advances the chains to `epoch` (catching up over skipped epochs —
    /// re-querying the same epoch is a no-op) and returns the mask.
    pub fn advance_to(&mut self, epoch: usize) -> &[bool] {
        if self.last_epoch != Some(epoch) {
            let from = match self.last_epoch {
                Some(le) if epoch > le => le + 1,
                _ => epoch,
            };
            for e in from..=epoch {
                self.step(e);
            }
            self.last_epoch = Some(epoch);
        }
        &self.up
    }

    fn step(&mut self, epoch: usize) {
        for w in 0..self.up.len() {
            let roll: f64 = self.rng.gen();
            let flip = if self.up[w] {
                roll < self.p_fail
            } else {
                roll < self.p_recover
            };
            if flip {
                self.up[w] = !self.up[w];
                self.since[w] = epoch;
            }
        }
        // Enforce the availability floor: recover the longest-down
        // workers first (lowest `since`, then lowest id — deterministic).
        while self.up_count() < self.min_up {
            let pick = (0..self.up.len())
                .filter(|&w| !self.up[w])
                .min_by_key(|&w| (self.since[w], w))
                // s2c2-allow: panic-reachability -- up_count < min_up <= n implies a down worker exists
                .expect("min_up <= n guarantees a candidate");
            self.up[pick] = true;
            self.since[pick] = epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_up() {
        let c = ChurnProcess::new(5, 0.2, 0.5, 2, 7);
        assert_eq!(c.up_count(), 5);
        assert_eq!(c.n(), 5);
    }

    #[test]
    fn no_churn_never_drops_anyone() {
        let mut c = ChurnProcess::none(6);
        for e in 0..100 {
            assert_eq!(c.advance_to(e).iter().filter(|&&u| u).count(), 6);
        }
    }

    #[test]
    fn min_up_floor_holds_under_heavy_churn() {
        let mut c = ChurnProcess::new(8, 0.9, 0.05, 5, 11);
        for e in 0..200 {
            c.advance_to(e);
            assert!(c.up_count() >= 5, "epoch {e}: floor violated");
        }
    }

    #[test]
    fn churn_actually_happens() {
        let mut c = ChurnProcess::new(8, 0.3, 0.3, 2, 3);
        let mut saw_down = false;
        for e in 0..50 {
            c.advance_to(e);
            if c.up_count() < 8 {
                saw_down = true;
            }
        }
        assert!(saw_down, "p_fail = 0.3 over 50 epochs must drop someone");
    }

    #[test]
    fn same_epoch_is_idempotent() {
        let mut c = ChurnProcess::new(6, 0.4, 0.4, 2, 9);
        c.advance_to(10);
        let snap = c.up().to_vec();
        for _ in 0..20 {
            assert_eq!(c.advance_to(10), &snap[..]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChurnProcess::new(10, 0.2, 0.4, 3, 42);
        let mut b = ChurnProcess::new(10, 0.2, 0.4, 3, 42);
        for e in 0..64 {
            assert_eq!(a.advance_to(e), b.advance_to(e));
        }
    }

    #[test]
    #[should_panic(expected = "min_up cannot exceed")]
    fn floor_above_pool_rejected() {
        let _ = ChurnProcess::new(3, 0.1, 0.1, 4, 0);
    }
}
