//! Real multi-threaded master/worker executor.
//!
//! One OS thread per worker, crossbeam channels for task dispatch and
//! result collection. The scheduling layer uses this engine to validate
//! the concurrency path — out-of-order completion, fastest-k collection,
//! straggler results arriving after the master has moved on, clean
//! shutdown — with the *same* strategy code it runs against the timing
//! simulator.
//!
//! Per-worker slowdowns are injected by busy-wait delays proportional to
//! task size, so the "who finishes first" structure of a straggler
//! scenario is reproduced with real threads.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A task envelope addressed to one worker.
#[derive(Debug)]
struct Envelope<T> {
    task_id: u64,
    cancel: Arc<AtomicBool>,
    payload: T,
}

/// Cooperative cancellation handle passed to cancellable workers.
///
/// The master flips the flag with [`ThreadedCluster::cancel`]; a worker
/// checks [`CancelToken::is_cancelled`] at its own safe points (e.g.
/// between chunks of a multi-chunk task), abandons the remaining work,
/// and replies with whatever partial progress it made — the hook the
/// recovery ladder's "cancel the late workers, learn their partial
/// speed" rule needs from a real executor.
#[derive(Debug)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Whether the master has cancelled this task.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A worker's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReply<R> {
    /// Worker that produced the result.
    pub worker: usize,
    /// Task id the result answers.
    pub task_id: u64,
    /// The computed payload.
    pub result: R,
}

/// A running pool of worker threads.
///
/// `T` is the task payload, `R` the result payload. Workers execute a
/// user-supplied closure per task; replies arrive on a shared channel in
/// completion order (not submission order).
pub struct ThreadedCluster<T, R> {
    senders: Vec<Sender<Envelope<T>>>,
    results: Receiver<WorkerReply<R>>,
    handles: Vec<JoinHandle<()>>,
    next_task: u64,
    /// Cancel flags of tasks not yet seen back by the master; pruned as
    /// replies are received and on explicit cancellation.
    cancels: Mutex<BTreeMap<u64, Arc<AtomicBool>>>,
    /// Wall-clock nanoseconds each worker thread has spent inside its
    /// task closure (queue/channel wait time excluded).
    busy_nanos: Arc<Vec<AtomicU64>>,
}

impl<T, R> ThreadedCluster<T, R>
where
    T: Send + 'static,
    R: Send + 'static,
{
    /// Spawns `n` workers. `make_worker(i)` builds the closure executed by
    /// worker `i` for each task. Tasks submitted to this pool ignore
    /// cancellation (see [`Self::spawn_cancellable`] for the cooperative
    /// variant).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn spawn<F>(n: usize, mut make_worker: impl FnMut(usize) -> F) -> Self
    where
        F: FnMut(T) -> R + Send + 'static,
    {
        Self::spawn_cancellable(n, move |worker| {
            let mut work = make_worker(worker);
            move |payload: T, _token: &CancelToken| work(payload)
        })
    }

    /// Spawns `n` workers whose closures receive a [`CancelToken`] next
    /// to each task payload, enabling cooperative mid-task cancellation
    /// with partial-progress replies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn spawn_cancellable<F>(n: usize, mut make_worker: impl FnMut(usize) -> F) -> Self
    where
        F: FnMut(T, &CancelToken) -> R + Send + 'static,
    {
        assert!(n > 0, "need at least one worker");
        let (result_tx, result_rx) = unbounded::<WorkerReply<R>>();
        let busy_nanos: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for worker in 0..n {
            // Bounded mailbox: a runaway master cannot queue unbounded work.
            let (tx, rx) = bounded::<Envelope<T>>(1024);
            let results = result_tx.clone();
            let mut work = make_worker(worker);
            let busy = Arc::clone(&busy_nanos);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("s2c2-worker-{worker}"))
                    .spawn(move || {
                        while let Ok(env) = rx.recv() {
                            let token = CancelToken(Arc::clone(&env.cancel));
                            let t0 = Instant::now();
                            let result = work(env.payload, &token);
                            let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            busy[worker].fetch_add(spent, Ordering::Relaxed);
                            // The master may have shut down early (it got
                            // its k results); a send failure is then fine.
                            if results
                                .send(WorkerReply {
                                    worker,
                                    task_id: env.task_id,
                                    result,
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                    })
                    // s2c2-allow: panic-reachability -- OS thread-spawn failure at startup has no recovery path
                    .expect("failed to spawn worker thread"),
            );
            senders.push(tx);
        }
        ThreadedCluster {
            senders,
            results: result_rx,
            handles,
            next_task: 0,
            cancels: Mutex::new(BTreeMap::new()),
            busy_nanos,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.senders.len()
    }

    /// Wall-clock seconds each worker has spent executing task closures
    /// so far (channel/queue wait excluded). Read while tasks are in
    /// flight this is a live snapshot; read after the replies are in it
    /// is the pool's real per-worker compute time.
    #[must_use]
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.busy_nanos
            .iter()
            .map(|b| b.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect()
    }

    /// Sends a task to `worker`; returns the task id.
    ///
    /// # Panics
    ///
    /// Panics if the worker's thread has died (its mailbox is closed) or
    /// `worker` is out of range.
    pub fn submit(&mut self, worker: usize, payload: T) -> u64 {
        let task_id = self.next_task;
        self.next_task += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        self.cancels
            .lock()
            // s2c2-allow: panic-reachability -- lock holders never panic, so the mutex cannot poison
            .expect("cancel registry poisoned")
            .insert(task_id, Arc::clone(&cancel));
        self.senders[worker]
            .send(Envelope {
                task_id,
                cancel,
                payload,
            })
            // s2c2-allow: panic-reachability -- workers only exit after their sender is dropped at shutdown
            .expect("worker thread has terminated");
        task_id
    }

    /// Requests cooperative cancellation of an in-flight task. The worker
    /// still replies (with partial progress, if its closure honours the
    /// [`CancelToken`]); cancellation only asks it to stop early.
    ///
    /// Returns `false` if the task already replied (or never existed) —
    /// cancelling it is then a no-op.
    pub fn cancel(&self, task_id: u64) -> bool {
        match self
            .cancels
            .lock()
            // s2c2-allow: panic-reachability -- lock holders never panic, so the mutex cannot poison
            .expect("cancel registry poisoned")
            .remove(&task_id)
        {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Drops the cancel-flag bookkeeping of a reply the master has seen.
    fn retire(&self, task_id: u64) {
        self.cancels
            .lock()
            // s2c2-allow: panic-reachability -- lock holders never panic, so the mutex cannot poison
            .expect("cancel registry poisoned")
            .remove(&task_id);
    }

    /// Receives the next completed result, waiting up to `timeout`.
    ///
    /// Returns `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<WorkerReply<R>> {
        match self.results.recv_timeout(timeout) {
            Ok(r) => {
                self.retire(r.task_id);
                Some(r)
            }
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Blocks for the next completed result.
    ///
    /// # Panics
    ///
    /// Panics if all workers have terminated and the channel drained.
    #[must_use]
    pub fn recv(&self) -> WorkerReply<R> {
        // s2c2-allow: panic-reachability -- documented Panics contract: callers hold live workers
        let r = self.results.recv().expect("all workers terminated");
        self.retire(r.task_id);
        r
    }

    /// Collects results until `pred` says the round is complete or
    /// `timeout` elapses. Results arriving after completion remain queued
    /// (they belong to cancelled stragglers and are drained next round —
    /// exactly the paper's "ignore the slow nodes" semantics).
    pub fn collect_until(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&[WorkerReply<R>]) -> bool,
    ) -> Vec<WorkerReply<R>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut got = Vec::new();
        while !pred(&got) {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            match self.recv_timeout(deadline - now) {
                Some(r) => got.push(r),
                None => break,
            }
        }
        got
    }

    /// Drains any stale results without blocking (start-of-round hygiene).
    pub fn drain_stale(&self) -> usize {
        let mut n = 0;
        while let Ok(r) = self.results.try_recv() {
            self.retire(r.task_id);
            n += 1;
        }
        n
    }

    /// Stops all workers and joins their threads.
    pub fn shutdown(self) {
        drop(self.senders); // closing mailboxes ends the worker loops
        drop(self.results);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Busy-wait for approximately `micros` microseconds — the slowdown
/// injection primitive. A busy-wait (rather than `sleep`) keeps timing
/// meaningful at tens-of-microsecond scale where OS sleep granularity
/// would swamp the signal.
pub fn spin_delay_micros(micros: u64) {
    let start = std::time::Instant::now();
    let dur = Duration::from_micros(micros);
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_tasks() {
        let mut cluster: ThreadedCluster<u64, u64> = ThreadedCluster::spawn(4, |_| |x: u64| x * 2);
        for w in 0..4 {
            cluster.submit(w, w as u64 + 10);
        }
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(cluster.recv());
        }
        got.sort_by_key(|r| r.worker);
        for (w, r) in got.iter().enumerate() {
            assert_eq!(r.worker, w);
            assert_eq!(r.result, (w as u64 + 10) * 2);
        }
        cluster.shutdown();
    }

    #[test]
    fn results_arrive_in_completion_order() {
        // Worker 0 is slow: its result should arrive after worker 1's.
        let mut cluster: ThreadedCluster<(), usize> = ThreadedCluster::spawn(2, |w| {
            move |()| {
                if w == 0 {
                    spin_delay_micros(20_000);
                }
                w
            }
        });
        cluster.submit(0, ());
        cluster.submit(1, ());
        let first = cluster.recv();
        let second = cluster.recv();
        assert_eq!(first.result, 1, "fast worker first");
        assert_eq!(second.result, 0);
        cluster.shutdown();
    }

    #[test]
    fn collect_until_k_of_n() {
        let mut cluster: ThreadedCluster<(), usize> = ThreadedCluster::spawn(4, |w| {
            move |()| {
                if w == 3 {
                    spin_delay_micros(50_000); // straggler
                }
                w
            }
        });
        for w in 0..4 {
            cluster.submit(w, ());
        }
        let got = cluster.collect_until(Duration::from_secs(5), |rs| rs.len() >= 3);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|r| r.worker != 3), "straggler not awaited");
        // The straggler's late reply is stale for the next round.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(cluster.drain_stale(), 1);
        cluster.shutdown();
    }

    #[test]
    fn timeout_returns_partial_results() {
        let mut cluster: ThreadedCluster<(), usize> = ThreadedCluster::spawn(2, |w| {
            move |()| {
                if w == 1 {
                    std::thread::sleep(Duration::from_secs(2));
                }
                w
            }
        });
        cluster.submit(0, ());
        cluster.submit(1, ());
        let got = cluster.collect_until(Duration::from_millis(300), |rs| rs.len() >= 2);
        assert_eq!(got.len(), 1, "only the fast worker inside the timeout");
        cluster.shutdown();
    }

    #[test]
    fn busy_time_accrues_only_on_working_threads() {
        let mut cluster: ThreadedCluster<(), ()> =
            ThreadedCluster::spawn(2, |_| |()| spin_delay_micros(2_000));
        cluster.submit(0, ());
        let _ = cluster.recv();
        let busy = cluster.busy_seconds();
        assert!(busy[0] >= 1e-3, "worker 0 spun ~2ms, measured {}", busy[0]);
        assert_eq!(busy[1], 0.0, "idle worker accrues nothing");
        cluster.shutdown();
    }

    #[test]
    fn task_ids_are_unique_and_monotonic() {
        let mut cluster: ThreadedCluster<(), ()> = ThreadedCluster::spawn(2, |_| |()| ());
        let a = cluster.submit(0, ());
        let b = cluster.submit(1, ());
        let c = cluster.submit(0, ());
        assert!(a < b && b < c);
        cluster.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_pending_results() {
        let mut cluster: ThreadedCluster<u32, u32> = ThreadedCluster::spawn(3, |_| |x: u32| x + 1);
        for w in 0..3 {
            cluster.submit(w, 7);
        }
        // Never read the results; shutdown must still join.
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _: ThreadedCluster<(), ()> = ThreadedCluster::spawn(0, |_| |()| ());
    }

    #[test]
    fn cancel_yields_partial_progress() {
        // The worker chews through a deliberately huge chunk budget
        // (~50s uncancelled), checking the token between chunks, so a
        // 10ms-in cancellation is guaranteed to land mid-task even on a
        // heavily loaded runner — no wall-clock race against the task
        // finishing first.
        let chunks = 100_000usize;
        let mut cluster: ThreadedCluster<usize, (usize, bool)> =
            ThreadedCluster::spawn_cancellable(1, |_| {
                |chunks: usize, token: &CancelToken| {
                    let mut done = 0;
                    for _ in 0..chunks {
                        if token.is_cancelled() {
                            return (done, true);
                        }
                        spin_delay_micros(500);
                        done += 1;
                    }
                    (done, false)
                }
            });
        let id = cluster.submit(0, chunks);
        // Let it chew a few chunks, then cancel.
        std::thread::sleep(Duration::from_millis(10));
        assert!(cluster.cancel(id), "task should still be in flight");
        let reply = cluster.recv();
        assert_eq!(reply.task_id, id);
        let (done, cancelled) = reply.result;
        assert!(cancelled, "worker must observe the cancellation");
        assert!(done < chunks, "partial progress, not the full task");
    }

    #[test]
    fn cancel_after_reply_is_a_noop() {
        let mut cluster: ThreadedCluster<u32, u32> = ThreadedCluster::spawn(1, |_| |x: u32| x);
        let id = cluster.submit(0, 7);
        let reply = cluster.recv();
        assert_eq!(reply.result, 7);
        // The reply retired the cancel flag; cancelling now is a no-op.
        assert!(!cluster.cancel(id));
        assert!(!cluster.cancel(id + 1), "unknown ids are no-ops too");
        cluster.shutdown();
    }

    #[test]
    fn uncancelled_cancellable_tasks_run_to_completion() {
        let mut cluster: ThreadedCluster<usize, usize> =
            ThreadedCluster::spawn_cancellable(2, |_| {
                |chunks: usize, token: &CancelToken| {
                    let mut done = 0;
                    for _ in 0..chunks {
                        if token.is_cancelled() {
                            break;
                        }
                        done += 1;
                    }
                    done
                }
            });
        cluster.submit(0, 10);
        cluster.submit(1, 20);
        let mut got = [cluster.recv(), cluster.recv()];
        got.sort_by_key(|r| r.worker);
        assert_eq!(got[0].result, 10);
        assert_eq!(got[1].result, 20);
        cluster.shutdown();
    }
}
