//! Communication and computation cost models.
//!
//! Both models are deliberately simple — a linear latency/bandwidth link
//! and a linear elements-per-second processor — because that is the level
//! of detail at which the paper reasons about its own cluster: what makes
//! or breaks each strategy is *how many rows a worker is assigned*, *how
//! much data has to move when rebalancing*, and *how long the master's
//! decode takes*, all of which these two models capture.

/// Point-to-point link model: `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl CommModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics unless bandwidth is positive and latency non-negative.
    #[must_use]
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        CommModel { bandwidth, latency }
    }

    /// A LAN-ish default: 1 GB/s, 1 ms latency (between the paper's
    /// InfiniBand local cluster and its shared-droplet cloud).
    #[must_use]
    pub fn lan() -> Self {
        CommModel::new(1e9, 1e-3)
    }

    /// Time to move `bytes` over one link.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel::lan()
    }
}

/// Worker computation model: `elements / (relative_speed · throughput)`.
///
/// "Elements" are matrix elements touched (`rows × cols` for a matvec
/// chunk), so doubling either the assigned rows or the matrix width
/// doubles compute time — the same proportionality the paper relies on
/// when it equates "rows assigned" with "work".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Elements per second processed by a worker at relative speed 1.0.
    pub elements_per_sec: f64,
}

impl ComputeModel {
    /// Creates a compute model.
    ///
    /// # Panics
    ///
    /// Panics unless throughput is positive.
    #[must_use]
    pub fn new(elements_per_sec: f64) -> Self {
        assert!(elements_per_sec > 0.0, "throughput must be positive");
        ComputeModel { elements_per_sec }
    }

    /// Time for a worker at `relative_speed` to process `elements`.
    ///
    /// # Panics
    ///
    /// Panics unless `relative_speed > 0` (dead workers are modelled as
    /// never responding, not as zero speed).
    #[must_use]
    pub fn time(&self, elements: u64, relative_speed: f64) -> f64 {
        assert!(relative_speed > 0.0, "relative speed must be positive");
        elements as f64 / (relative_speed * self.elements_per_sec)
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        // 100M elements/s: a deliberately modest single-core figure so
        // compute dominates communication for the paper's matrix sizes.
        ComputeModel::new(1e8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_linear_in_bytes() {
        let c = CommModel::new(1e6, 0.5);
        assert_eq!(c.transfer_time(0), 0.0);
        assert!((c.transfer_time(1_000_000) - 1.5).abs() < 1e-12);
        assert!((c.transfer_time(2_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn compute_time_scales_with_speed() {
        let m = ComputeModel::new(1e6);
        let full = m.time(1_000_000, 1.0);
        let slow = m.time(1_000_000, 0.2);
        assert!((full - 1.0).abs() < 1e-12);
        assert!(
            (slow - 5.0).abs() < 1e-12,
            "5x slower worker takes 5x longer"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = CommModel::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "relative speed must be positive")]
    fn zero_speed_rejected() {
        let _ = ComputeModel::default().time(10, 0.0);
    }

    #[test]
    fn defaults_are_sane() {
        assert!(CommModel::default().transfer_time(8_000_000) < 0.1);
        assert!(ComputeModel::default().time(100_000_000, 1.0) <= 1.0 + 1e-9);
    }
}
