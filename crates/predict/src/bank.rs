//! Per-worker predictor bank.
//!
//! The master keeps one stateful predictor per worker (all sharing the same
//! trained parameters) and, at the end of every iteration, feeds each one
//! the speed it just observed (`rows / response_time`) to obtain the
//! prediction driving the next iteration's work allocation (§6.2).

use crate::predictor::{BoxedPredictor, SpeedPredictor};

/// A bank of per-worker predictors.
pub struct PredictorBank {
    predictors: Vec<BoxedPredictor>,
}

impl PredictorBank {
    /// Builds a bank of `workers` clones of a prototype predictor.
    #[must_use]
    pub fn from_prototype(prototype: &dyn SpeedPredictor, workers: usize) -> Self {
        PredictorBank {
            predictors: (0..workers).map(|_| prototype.clone_box()).collect(),
        }
    }

    /// Builds a bank from distinct per-worker predictors.
    #[must_use]
    pub fn from_predictors(predictors: Vec<BoxedPredictor>) -> Self {
        PredictorBank { predictors }
    }

    /// Number of workers tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.predictors.len()
    }

    /// `true` when the bank is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.predictors.is_empty()
    }

    /// Cold-start predictions (before any observation).
    #[must_use]
    pub fn predict_cold(&self) -> Vec<f64> {
        self.predictors.iter().map(|p| p.predict_cold()).collect()
    }

    /// Feeds per-worker observations, returns per-worker next-iteration
    /// predictions.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len()` differs from the bank size.
    pub fn observe_and_predict(&mut self, observed: &[f64]) -> Vec<f64> {
        assert_eq!(observed.len(), self.predictors.len(), "bank size mismatch");
        self.predictors
            .iter_mut()
            .zip(observed.iter())
            .map(|(p, &o)| p.observe_and_predict(o))
            .collect()
    }

    /// Like [`Self::observe_and_predict`], but workers with `None` (idle
    /// this round — no response to measure) keep their previous prediction
    /// without advancing predictor state.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len()` differs from the bank size.
    pub fn observe_and_predict_masked(&mut self, observed: &[Option<f64>]) -> Vec<f64> {
        assert_eq!(observed.len(), self.predictors.len(), "bank size mismatch");
        self.predictors
            .iter_mut()
            .zip(observed.iter())
            .map(|(p, o)| match o {
                Some(v) => p.observe_and_predict(*v),
                None => p.predict_cold(),
            })
            .collect()
    }

    /// Resets every predictor's online state.
    pub fn reset(&mut self) {
        for p in &mut self.predictors {
            p.reset();
        }
    }
}

impl Clone for PredictorBank {
    fn clone(&self) -> Self {
        PredictorBank {
            predictors: self.predictors.clone(),
        }
    }
}

impl std::fmt::Debug for PredictorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorBank")
            .field("workers", &self.predictors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::LastValue;

    #[test]
    fn bank_tracks_workers_independently() {
        let mut bank = PredictorBank::from_prototype(&LastValue::default(), 3);
        assert_eq!(bank.len(), 3);
        let preds = bank.observe_and_predict(&[0.5, 1.0, 0.25]);
        assert_eq!(preds, vec![0.5, 1.0, 0.25]);
        // Second round: each worker remembers its own observation.
        let preds = bank.observe_and_predict(&[0.6, 0.9, 0.2]);
        assert_eq!(preds, vec![0.6, 0.9, 0.2]);
    }

    #[test]
    fn cold_predictions_before_observation() {
        let bank = PredictorBank::from_prototype(&LastValue::new(1.0), 2);
        assert_eq!(bank.predict_cold(), vec![1.0, 1.0]);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut bank = PredictorBank::from_prototype(&LastValue::default(), 2);
        let _ = bank.observe_and_predict(&[0.1, 0.2]);
        bank.reset();
        assert_eq!(bank.predict_cold(), vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "bank size mismatch")]
    fn size_mismatch_panics() {
        let mut bank = PredictorBank::from_prototype(&LastValue::default(), 2);
        let _ = bank.observe_and_predict(&[1.0]);
    }

    #[test]
    fn clone_is_deep() {
        let mut bank = PredictorBank::from_prototype(&LastValue::default(), 1);
        let snapshot = bank.clone();
        let _ = bank.observe_and_predict(&[0.3]);
        assert_eq!(
            snapshot.predict_cold(),
            vec![1.0],
            "clone must not share state"
        );
        assert_eq!(bank.predict_cold(), vec![0.3]);
    }
}
