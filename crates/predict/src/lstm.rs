//! From-scratch LSTM speed forecaster.
//!
//! Architecture per §6.1 of the paper: a single LSTM layer with
//! 1-dimensional input (the previous iteration's speed), 4-dimensional
//! hidden state with tanh cell activation, and a 1-dimensional linear
//! output head. Training is truncated BPTT with MSE loss and the Adam
//! optimizer; gradients are verified against finite differences in tests.
//!
//! Three deliberate refinements over the paper's plain setup, all aimed at
//! the metric the paper actually scores (MAPE, a *relative* error):
//!
//! * **Residual head** — `ŷ_t = x_t + (w_y·h_t + b_y)`, so the persistence
//!   forecast ("next speed = current speed", near-optimal between regime
//!   jumps) is the zero function and the LSTM only learns corrections.
//!   Without it, a 101-parameter model spends its whole budget re-learning
//!   the identity through saturating gates.
//! * **Log-space inputs/targets** (`log_space`, default on) — absolute
//!   errors in `ln(speed)` are relative errors in speed, aligning the
//!   training objective with MAPE; otherwise MSE training shades
//!   predictions toward the mean, which is catastrophic in percentage
//!   terms whenever the node sits in a slow regime.
//! * **Huber loss** (`huber_delta`) — behaves like L1 beyond the delta, so
//!   the optimum is the conditional *median*: under rare regime jumps the
//!   median is "stay", exactly the forecast a scheduler wants, while pure
//!   MSE would hedge toward the jump.
//!
//! Parameters are stored in one flat `Vec<f64>` (101 values at the default
//! hidden size) with named offset accessors, which keeps Adam and gradient
//! checking trivial and allocation-free in the hot loop.

use crate::normalize::Normalizer;
use crate::predictor::{BoxedPredictor, SpeedPredictor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for LSTM training.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Hidden state dimension (paper: 4).
    pub hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs over the window set.
    pub epochs: usize,
    /// BPTT window length.
    pub seq_len: usize,
    /// Windows per Adam step.
    pub batch_size: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
    /// Model speeds in log space (see module docs).
    pub log_space: bool,
    /// Huber loss transition point (in normalized units).
    pub huber_delta: f64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 4,
            learning_rate: 0.01,
            epochs: 30,
            seq_len: 16,
            batch_size: 32,
            grad_clip: 1.0,
            seed: 42,
            log_space: true,
            huber_delta: 0.1,
        }
    }
}

/// Offsets into the flat parameter vector.
#[derive(Debug, Clone, Copy)]
struct Offsets {
    h: usize,
    wx: usize, // 4H input weights
    wh: usize, // 4H x H recurrent weights, row-major
    b: usize,  // 4H biases
    wy: usize, // H output weights
    by: usize, // 1 output bias
    total: usize,
}

impl Offsets {
    fn new(h: usize) -> Self {
        let wx = 0;
        let wh = wx + 4 * h;
        let b = wh + 4 * h * h;
        let wy = b + 4 * h;
        let by = wy + h;
        Offsets {
            h,
            wx,
            wh,
            b,
            wy,
            by,
            total: by + 1,
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep forward cache used by BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: f64,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    gates: Vec<f64>, // activated i|f|g|o, length 4H
    c: Vec<f64>,
    tanh_c: Vec<f64>,
    h: Vec<f64>,
    y: f64,
}

/// A trained LSTM model: flat parameters + input normalizer.
#[derive(Debug, Clone)]
pub struct TrainedLstm {
    off: Offsets,
    theta: Vec<f64>,
    norm: Normalizer,
    log_space: bool,
}

impl TrainedLstm {
    /// Maps a raw speed into model space.
    fn to_model(&self, raw: f64) -> f64 {
        let v = if self.log_space {
            raw.max(1e-9).ln()
        } else {
            raw
        };
        self.norm.normalize(v)
    }

    /// Maps a model-space output back to a raw speed.
    fn model_to_raw(&self, z: f64) -> f64 {
        let v = self.norm.denormalize(z);
        if self.log_space {
            v.exp()
        } else {
            v.max(1e-6)
        }
    }

    /// Hidden dimension.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.off.h
    }

    /// Number of scalar parameters (101 at the paper's hidden size 4).
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.off.total
    }

    /// One forward step from `(h, c)` on normalized input `x`.
    fn step(&self, x: f64, h: &[f64], c: &[f64]) -> StepCache {
        step_with(&self.theta, self.off, x, h, c)
    }

    /// Runs the model over a raw (unnormalized) series, returning one-step
    /// ahead predictions aligned so `pred[t]` forecasts `series[t + 1]`.
    #[must_use]
    pub fn forecast_series(&self, series: &[f64]) -> Vec<f64> {
        let hdim = self.off.h;
        let mut h = vec![0.0; hdim];
        let mut c = vec![0.0; hdim];
        let mut out = Vec::with_capacity(series.len());
        for &raw in series {
            let cache = self.step(self.to_model(raw), &h, &c);
            h = cache.h.clone();
            c = cache.c.clone();
            out.push(self.model_to_raw(cache.y));
        }
        out
    }

    /// Creates a stateful per-worker online predictor sharing these weights.
    #[must_use]
    pub fn online(&self) -> LstmPredictor {
        LstmPredictor {
            model: self.clone(),
            h: vec![0.0; self.off.h],
            c: vec![0.0; self.off.h],
            last_pred: None,
        }
    }
}

fn step_with(theta: &[f64], off: Offsets, x: f64, h_prev: &[f64], c_prev: &[f64]) -> StepCache {
    let hd = off.h;
    let mut gates = vec![0.0; 4 * hd];
    for u in 0..4 * hd {
        let mut z = theta[off.wx + u] * x + theta[off.b + u];
        let wh_row = &theta[off.wh + u * hd..off.wh + (u + 1) * hd];
        for (w, hp) in wh_row.iter().zip(h_prev.iter()) {
            z += w * hp;
        }
        gates[u] = z;
    }
    // Activate: i, f, o sigmoid; g tanh.
    for u in 0..hd {
        gates[u] = sigmoid(gates[u]); // i
        gates[hd + u] = sigmoid(gates[hd + u]); // f
        gates[2 * hd + u] = gates[2 * hd + u].tanh(); // g
        gates[3 * hd + u] = sigmoid(gates[3 * hd + u]); // o
    }
    let mut c = vec![0.0; hd];
    let mut tanh_c = vec![0.0; hd];
    let mut h = vec![0.0; hd];
    // Residual head: persistence plus a learned correction.
    let mut y = theta[off.by] + x;
    for u in 0..hd {
        c[u] = gates[hd + u] * c_prev[u] + gates[u] * gates[2 * hd + u];
        tanh_c[u] = c[u].tanh();
        h[u] = gates[3 * hd + u] * tanh_c[u];
        y += theta[off.wy + u] * h[u];
    }
    StepCache {
        x,
        h_prev: h_prev.to_vec(),
        c_prev: c_prev.to_vec(),
        gates,
        c,
        tanh_c,
        h,
        y,
    }
}

/// Huber loss value and derivative.
#[inline]
fn huber(e: f64, delta: f64) -> (f64, f64) {
    if e.abs() <= delta {
        (0.5 * e * e, e)
    } else {
        (delta * (e.abs() - 0.5 * delta), delta * e.signum())
    }
}

/// Forward + backward over one window; returns (loss, accumulates grads).
///
/// `window` is a normalized series; inputs are `window[..len-1]`, targets
/// `window[1..]`. Gradients are *added* into `grad`.
fn window_loss_and_grad(
    theta: &[f64],
    off: Offsets,
    window: &[f64],
    delta: f64,
    grad: &mut [f64],
) -> f64 {
    let hd = off.h;
    let steps = window.len() - 1;
    debug_assert!(steps > 0);

    // Forward.
    let mut caches: Vec<StepCache> = Vec::with_capacity(steps);
    let mut h = vec![0.0; hd];
    let mut c = vec![0.0; hd];
    for &x in window.iter().take(steps) {
        let cache = step_with(theta, off, x, &h, &c);
        h = cache.h.clone();
        c = cache.c.clone();
        caches.push(cache);
    }
    let inv_steps = 1.0 / steps as f64;
    let mut loss = 0.0;
    for (t, cache) in caches.iter().enumerate() {
        let (l, _) = huber(cache.y - window[t + 1], delta);
        loss += l * inv_steps;
    }

    // Backward.
    let mut dh_next = vec![0.0; hd];
    let mut dc_next = vec![0.0; hd];
    for t in (0..steps).rev() {
        let cache = &caches[t];
        let (_, dl) = huber(cache.y - window[t + 1], delta);
        let dy = dl * inv_steps;
        grad[off.by] += dy;
        let mut dh = dh_next.clone();
        for u in 0..hd {
            grad[off.wy + u] += dy * cache.h[u];
            dh[u] += dy * theta[off.wy + u];
        }
        let mut dz = vec![0.0; 4 * hd];
        let mut dc_prev = vec![0.0; hd];
        for u in 0..hd {
            let i = cache.gates[u];
            let f = cache.gates[hd + u];
            let g = cache.gates[2 * hd + u];
            let o = cache.gates[3 * hd + u];
            let do_ = dh[u] * cache.tanh_c[u];
            let mut dc = dc_next[u] + dh[u] * o * (1.0 - cache.tanh_c[u] * cache.tanh_c[u]);
            let di = dc * g;
            let df = dc * cache.c_prev[u];
            let dg = dc * i;
            dc *= f;
            dc_prev[u] = dc;
            dz[u] = di * i * (1.0 - i);
            dz[hd + u] = df * f * (1.0 - f);
            dz[2 * hd + u] = dg * (1.0 - g * g);
            dz[3 * hd + u] = do_ * o * (1.0 - o);
        }
        let mut dh_prev = vec![0.0; hd];
        for u in 0..4 * hd {
            grad[off.wx + u] += dz[u] * cache.x;
            grad[off.b + u] += dz[u];
            let wh_row = &theta[off.wh + u * hd..off.wh + (u + 1) * hd];
            let grad_row = &mut grad[off.wh + u * hd..off.wh + (u + 1) * hd];
            for v in 0..hd {
                grad_row[v] += dz[u] * cache.h_prev[v];
                dh_prev[v] += wh_row[v] * dz[u];
            }
        }
        dh_next = dh_prev;
        dc_next = dc_prev;
    }
    loss
}

/// Trains an LSTM on a set of raw speed series (one per node).
///
/// Windows of `config.seq_len + 1` samples (stride `seq_len / 2`) are cut
/// from every series, shuffled each epoch, and consumed in minibatches by
/// Adam. The input normalizer is fit on the training data only.
///
/// # Panics
///
/// Panics when no window can be cut (series shorter than `seq_len + 1`)
/// or on degenerate hyper-parameters.
#[must_use]
pub fn train(config: &LstmConfig, series: &[&[f64]]) -> TrainedLstm {
    assert!(config.hidden > 0, "hidden size must be positive");
    assert!(config.seq_len >= 2, "need at least 2-step windows");
    assert!(config.batch_size > 0, "batch size must be positive");
    let off = Offsets::new(config.hidden);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Normalizer over all training samples (in log space if configured).
    let transform = |x: f64| {
        if config.log_space {
            x.max(1e-9).ln()
        } else {
            x
        }
    };
    let all: Vec<f64> = series
        .iter()
        .flat_map(|s| s.iter().map(|&x| transform(x)))
        .collect();
    let norm = Normalizer::fit(&all);

    // Cut normalized windows.
    let w = config.seq_len + 1;
    let stride = (config.seq_len / 2).max(1);
    let mut windows: Vec<Vec<f64>> = Vec::new();
    for s in series {
        if s.len() < w {
            continue;
        }
        let mut start = 0;
        while start + w <= s.len() {
            windows.push(
                s[start..start + w]
                    .iter()
                    .map(|&x| norm.normalize(transform(x)))
                    .collect(),
            );
            start += stride;
        }
    }
    assert!(
        !windows.is_empty(),
        "no training windows (series too short?)"
    );

    // Init: small uniform weights, forget-gate bias +1 (standard trick for
    // gradient flow on slowly varying series).
    let mut theta = vec![0.0; off.total];
    let scale = 1.0 / (config.hidden as f64).sqrt();
    for v in theta.iter_mut() {
        *v = rng.gen_range(-scale..scale);
    }
    for u in 0..config.hidden {
        theta[off.b + off.h + u] = 1.0;
    }

    // Adam state.
    let mut m = vec![0.0; off.total];
    let mut v = vec![0.0; off.total];
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    let mut step_count = 0usize;

    let mut order: Vec<usize> = (0..windows.len()).collect();
    let mut grad = vec![0.0; off.total];
    for _epoch in 0..config.epochs {
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for batch in order.chunks(config.batch_size) {
            grad.iter_mut().for_each(|g| *g = 0.0);
            for &wi in batch {
                let _ =
                    window_loss_and_grad(&theta, off, &windows[wi], config.huber_delta, &mut grad);
            }
            let scale = 1.0 / batch.len() as f64;
            grad.iter_mut().for_each(|g| *g *= scale);
            // Global norm clip.
            let norm2: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm2 > config.grad_clip {
                let s = config.grad_clip / norm2;
                grad.iter_mut().for_each(|g| *g *= s);
            }
            // Adam update.
            step_count += 1;
            let bc1 = 1.0 - b1.powi(step_count as i32);
            let bc2 = 1.0 - b2.powi(step_count as i32);
            for p in 0..off.total {
                m[p] = b1 * m[p] + (1.0 - b1) * grad[p];
                v[p] = b2 * v[p] + (1.0 - b2) * grad[p] * grad[p];
                let mhat = m[p] / bc1;
                let vhat = v[p] / bc2;
                theta[p] -= config.learning_rate * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    TrainedLstm {
        off,
        theta,
        norm,
        log_space: config.log_space,
    }
}

/// Stateful per-worker online LSTM forecaster.
#[derive(Debug, Clone)]
pub struct LstmPredictor {
    model: TrainedLstm,
    h: Vec<f64>,
    c: Vec<f64>,
    last_pred: Option<f64>,
}

impl SpeedPredictor for LstmPredictor {
    fn observe_and_predict(&mut self, observed: f64) -> f64 {
        let cache = self
            .model
            .step(self.model.to_model(observed), &self.h, &self.c);
        self.h = cache.h;
        self.c = cache.c;
        let pred = self.model.model_to_raw(cache.y).max(1e-6);
        self.last_pred = Some(pred);
        pred
    }

    fn predict_cold(&self) -> f64 {
        self.last_pred
            .unwrap_or_else(|| self.model.model_to_raw(0.0))
    }

    fn clone_box(&self) -> BoxedPredictor {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.h.iter_mut().for_each(|x| *x = 0.0);
        self.c.iter_mut().for_each(|x| *x = 0.0);
        self.last_pred = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LstmConfig {
        LstmConfig {
            hidden: 3,
            learning_rate: 0.02,
            epochs: 12,
            seq_len: 8,
            batch_size: 8,
            grad_clip: 5.0,
            seed: 7,
            log_space: false,
            huber_delta: 1e9, // pure L2 region: easier analytic comparisons
        }
    }

    #[test]
    fn offsets_partition_parameter_vector() {
        let off = Offsets::new(4);
        assert_eq!(off.wx, 0);
        assert_eq!(off.wh, 16);
        assert_eq!(off.b, 16 + 64);
        assert_eq!(off.wy, 96);
        assert_eq!(off.by, 100);
        assert_eq!(off.total, 101, "paper-sized model has 101 parameters");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let off = Offsets::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let theta: Vec<f64> = (0..off.total).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let window: Vec<f64> = (0..7).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let mut grad = vec![0.0; off.total];
        let _ = window_loss_and_grad(&theta, off, &window, 0.35, &mut grad);

        let eps = 1e-6;
        // Check every parameter — the model is tiny.
        for p in 0..off.total {
            let mut tp = theta.clone();
            tp[p] += eps;
            let mut sink = vec![0.0; off.total];
            let lp = window_loss_and_grad(&tp, off, &window, 0.35, &mut sink);
            tp[p] -= 2.0 * eps;
            sink.iter_mut().for_each(|g| *g = 0.0);
            let lm = window_loss_and_grad(&tp, off, &window, 0.35, &mut sink);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad[p];
            let denom = 1.0_f64.max(numeric.abs()).max(analytic.abs());
            assert!(
                (numeric - analytic).abs() / denom < 1e-4,
                "param {p}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_learnable_series() {
        // Deterministic sawtooth: entirely predictable from short history.
        let series: Vec<f64> = (0..400)
            .map(|i| 0.5 + 0.3 * ((i % 8) as f64 / 8.0))
            .collect();
        let cfg = tiny_config();
        let off = Offsets::new(cfg.hidden);

        // Loss of an untrained (random-init) model.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let norm = Normalizer::fit(&series);
        let normed: Vec<f64> = series.iter().map(|&x| norm.normalize(x)).collect();
        let theta0: Vec<f64> = (0..off.total).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let mut sink = vec![0.0; off.total];
        let loss_before = window_loss_and_grad(
            &theta0,
            off,
            &normed[..cfg.seq_len + 1],
            cfg.huber_delta,
            &mut sink,
        );

        let model = train(&cfg, &[&series]);
        sink.iter_mut().for_each(|g| *g = 0.0);
        let loss_after = window_loss_and_grad(
            &model.theta,
            off,
            &normed[..cfg.seq_len + 1],
            cfg.huber_delta,
            &mut sink,
        );
        assert!(
            loss_after < loss_before * 0.5,
            "training did not reduce loss: {loss_before} -> {loss_after}"
        );
    }

    #[test]
    fn forecast_tracks_slowly_varying_series() {
        // Train on a slowly drifting series; one-step predictions should be
        // much better than predicting the global mean.
        let series: Vec<f64> = (0..600)
            .map(|i| 0.8 + 0.15 * ((i as f64) * 0.05).sin())
            .collect();
        let model = train(&tiny_config(), &[&series[..480]]);
        let preds = model.forecast_series(&series[480..]);
        let actual = &series[481..];
        let mean = 0.8;
        let mut err_model = 0.0;
        let mut err_mean = 0.0;
        for (p, a) in preds.iter().zip(actual.iter()) {
            err_model += (p - a).abs();
            err_mean += (mean - a).abs();
        }
        assert!(
            err_model < err_mean * 0.6,
            "LSTM ({err_model}) should beat mean forecaster ({err_mean})"
        );
    }

    #[test]
    fn online_predictor_matches_forecast_series() {
        let series: Vec<f64> = (0..200)
            .map(|i| 0.6 + 0.1 * ((i as f64) * 0.1).cos())
            .collect();
        let model = train(&tiny_config(), &[&series]);
        let batch = model.forecast_series(&series[..50]);
        let mut online = model.online();
        for (t, &x) in series[..50].iter().enumerate() {
            let p = online.observe_and_predict(x);
            assert!(
                (p - batch[t]).abs() < 1e-12,
                "step {t}: {p} vs {}",
                batch[t]
            );
        }
    }

    #[test]
    fn online_reset_restores_cold_state() {
        let series: Vec<f64> = (0..100).map(|i| 0.5 + 0.01 * (i % 10) as f64).collect();
        let model = train(&tiny_config(), &[&series]);
        let mut online = model.online();
        let first = online.observe_and_predict(0.55);
        let _ = online.observe_and_predict(0.60);
        online.reset();
        let again = online.observe_and_predict(0.55);
        assert!(
            (first - again).abs() < 1e-12,
            "reset must restore initial state"
        );
    }

    #[test]
    fn predictions_stay_positive() {
        let series: Vec<f64> = (0..150).map(|i| 0.02 + 0.01 * ((i % 5) as f64)).collect();
        let model = train(&tiny_config(), &[&series]);
        let mut online = model.online();
        for &x in &series {
            assert!(online.observe_and_predict(x) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no training windows")]
    fn too_short_series_panics() {
        let s = vec![1.0, 2.0, 3.0];
        let _ = train(&tiny_config(), &[&s]);
    }
}
