//! Train-set normalization shared by the learned predictors.
//!
//! Speeds live roughly in `(0, 1.1]`; the LSTM's tanh nonlinearities want
//! zero-centred, unit-scale inputs. The normalizer is fit on training data
//! only (no test leakage) and travels with the trained model so online
//! inference sees the same transform.

/// Affine normalizer `z = (x − mean) / std`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    /// Training-set mean.
    pub mean: f64,
    /// Training-set standard deviation (floored to avoid division blowup).
    pub std: f64,
}

impl Normalizer {
    /// Fits mean/std over a sample slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn fit(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot fit a normalizer on no data");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        Normalizer {
            mean,
            std: var.sqrt().max(1e-6),
        }
    }

    /// Identity transform (mean 0, std 1).
    #[must_use]
    pub fn identity() -> Self {
        Normalizer {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Forward transform.
    #[must_use]
    pub fn normalize(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Inverse transform.
    #[must_use]
    pub fn denormalize(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_roundtrip() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let n = Normalizer::fit(&data);
        assert!((n.mean - 2.5).abs() < 1e-12);
        for x in data {
            assert!((n.denormalize(n.normalize(x)) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_stats_are_standard() {
        let data: Vec<f64> = (0..100).map(|i| 0.5 + 0.01 * i as f64).collect();
        let n = Normalizer::fit(&data);
        let z: Vec<f64> = data.iter().map(|&x| n.normalize(x)).collect();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|x| x * x).sum::<f64>() / z.len() as f64 - mean * mean;
        assert!(mean.abs() < 1e-10);
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let n = Normalizer::fit(&[2.0; 10]);
        assert!(n.normalize(2.0).abs() < 1e-6);
        assert!(n.normalize(3.0).is_finite());
    }

    #[test]
    fn identity_is_noop() {
        let n = Normalizer::identity();
        assert_eq!(n.normalize(1.5), 1.5);
        assert_eq!(n.denormalize(1.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn empty_fit_panics() {
        let _ = Normalizer::fit(&[]);
    }
}
