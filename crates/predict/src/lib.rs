//! Worker-speed forecasting: from-scratch LSTM and ARIMA baselines.
//!
//! §6.1 of the S²C² paper models per-node speed as a univariate time series
//! and compares an LSTM (1-dimensional input, 4-dimensional tanh hidden
//! state, 1-dimensional output) against ARIMA(1,0,0), ARIMA(2,0,0) and
//! ARIMA(1,1,1), trained on an 80:20 split of measured droplet traces. The
//! LSTM wins with a test MAPE of 16.7%, beating ARIMA(1,0,0) by 5 points,
//! and its per-node inference costs ~200 µs.
//!
//! This crate reproduces that stack with no ML framework:
//!
//! * [`lstm`] — forward pass, truncated-BPTT gradients (verified against
//!   finite differences in tests), Adam optimizer, and a stateful online
//!   stepper for per-iteration inference.
//! * [`arima`] — AR(1)/AR(2) by ordinary least squares and ARIMA(1,1,1) by
//!   Hannan–Rissanen two-stage estimation.
//! * [`predictor`] — the [`SpeedPredictor`] online interface the scheduler
//!   consumes (`observe_and_predict`), plus trivial baselines
//!   ([`predictor::LastValue`], [`predictor::UniformSpeed`]).
//! * [`bank`] — a per-worker bank of predictor instances sharing one
//!   trained model, which is how the master drives them each iteration.
//! * [`eval`] — the §6.1 experiment harness: train on a trace set, report
//!   test MAPE per model.

#![warn(missing_docs)]

pub mod arima;
pub mod bank;
pub mod eval;
pub mod lstm;
pub mod normalize;
pub mod predictor;

pub use bank::PredictorBank;
pub use predictor::{BoxedPredictor, SpeedPredictor};
