//! The online prediction interface the S²C² master consumes.
//!
//! Each worker gets one stateful predictor instance. After an iteration
//! completes, the master computes the worker's *observed* speed
//! (`rows_computed / response_time`, §6.2) and calls
//! [`SpeedPredictor::observe_and_predict`], which returns the speed
//! estimate for the next iteration. Allocation then runs on the predicted
//! speeds.

/// A stateful one-step-ahead speed forecaster for a single worker.
pub trait SpeedPredictor: Send {
    /// Feeds the observed speed of the just-finished iteration and returns
    /// the prediction for the next iteration.
    fn observe_and_predict(&mut self, observed: f64) -> f64;

    /// Prediction for the next iteration *without* new information
    /// (used before the first iteration, when nothing has been observed).
    fn predict_cold(&self) -> f64;

    /// Clones into a boxed trait object (predictors are stateful).
    fn clone_box(&self) -> BoxedPredictor;

    /// Resets online state (hidden state / lag buffers) without forgetting
    /// trained parameters — called when a job restarts.
    fn reset(&mut self);
}

/// Owned, type-erased predictor.
pub type BoxedPredictor = Box<dyn SpeedPredictor>;

impl Clone for BoxedPredictor {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Predicts the last observed value (the "naive" / random-walk forecaster).
///
/// This is both a baseline in its own right and the cold-start behaviour
/// the paper describes: "Initially master node starts with the assumption
/// that all the worker nodes have the same speed".
#[derive(Debug, Clone)]
pub struct LastValue {
    last: f64,
}

impl LastValue {
    /// Creates the predictor with an initial cold-start guess.
    #[must_use]
    pub fn new(initial: f64) -> Self {
        LastValue { last: initial }
    }
}

impl Default for LastValue {
    fn default() -> Self {
        LastValue::new(1.0)
    }
}

impl SpeedPredictor for LastValue {
    fn observe_and_predict(&mut self, observed: f64) -> f64 {
        self.last = observed;
        observed
    }
    fn predict_cold(&self) -> f64 {
        self.last
    }
    fn clone_box(&self) -> BoxedPredictor {
        Box::new(self.clone())
    }
    fn reset(&mut self) {
        self.last = 1.0;
    }
}

/// Always predicts the same constant speed for every worker.
///
/// This is what *basic* S²C² uses: it deliberately ignores speed variation
/// among non-stragglers and treats them all as equal.
#[derive(Debug, Clone, Copy)]
pub struct UniformSpeed {
    /// The constant prediction.
    pub speed: f64,
}

impl UniformSpeed {
    /// Creates the constant predictor.
    #[must_use]
    pub fn new(speed: f64) -> Self {
        UniformSpeed { speed }
    }
}

impl Default for UniformSpeed {
    fn default() -> Self {
        UniformSpeed { speed: 1.0 }
    }
}

impl SpeedPredictor for UniformSpeed {
    fn observe_and_predict(&mut self, _observed: f64) -> f64 {
        self.speed
    }
    fn predict_cold(&self) -> f64 {
        self.speed
    }
    fn clone_box(&self) -> BoxedPredictor {
        Box::new(*self)
    }
    fn reset(&mut self) {}
}

/// Exponentially weighted moving average predictor — a cheap smoother that
/// sits between LastValue and the learned models; useful in ablations.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates the smoother with weight `alpha` on the newest observation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, state: None }
    }
}

impl SpeedPredictor for Ewma {
    fn observe_and_predict(&mut self, observed: f64) -> f64 {
        let next = match self.state {
            None => observed,
            Some(s) => self.alpha * observed + (1.0 - self.alpha) * s,
        };
        self.state = Some(next);
        next
    }
    fn predict_cold(&self) -> f64 {
        self.state.unwrap_or(1.0)
    }
    fn clone_box(&self) -> BoxedPredictor {
        Box::new(self.clone())
    }
    fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks() {
        let mut p = LastValue::default();
        assert_eq!(p.predict_cold(), 1.0);
        assert_eq!(p.observe_and_predict(0.7), 0.7);
        assert_eq!(p.predict_cold(), 0.7);
        p.reset();
        assert_eq!(p.predict_cold(), 1.0);
    }

    #[test]
    fn uniform_never_moves() {
        let mut p = UniformSpeed::new(0.9);
        assert_eq!(p.observe_and_predict(0.1), 0.9);
        assert_eq!(p.predict_cold(), 0.9);
    }

    #[test]
    fn ewma_smooths() {
        let mut p = Ewma::new(0.5);
        assert_eq!(p.observe_and_predict(1.0), 1.0); // first obs initializes
        let second = p.observe_and_predict(0.0);
        assert!((second - 0.5).abs() < 1e-12);
        let third = p.observe_and_predict(0.0);
        assert!((third - 0.25).abs() < 1e-12);
        p.reset();
        assert_eq!(p.predict_cold(), 1.0);
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut p = LastValue::default();
        let _ = p.observe_and_predict(0.42);
        let boxed: BoxedPredictor = p.clone_box();
        assert_eq!(boxed.predict_cold(), 0.42);
        let cloned = boxed.clone();
        assert_eq!(cloned.predict_cold(), 0.42);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }
}
