//! The §6.1 experiment harness: train each model on a trace set's 80%
//! split, score one-step-ahead MAPE on the held-out 20%.
//!
//! The paper reports: LSTM test MAPE 16.7%, beating ARIMA(1,0,0) — itself
//! the best ARIMA — by 5 points. `figures prediction` in `s2c2-bench`
//! prints this comparison from generated traces.

use crate::arima::{ArimaModel, ArimaOrder};
use crate::lstm::{train, LstmConfig, TrainedLstm};
use crate::predictor::{LastValue, SpeedPredictor};
use s2c2_trace::stats::{mape, misprediction_rate};
use s2c2_trace::TraceSet;

/// Per-model evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelScore {
    /// Human-readable model name.
    pub name: String,
    /// Test-set Mean Absolute Percentage Error, percent.
    pub mape: f64,
    /// Fraction of test predictions off by more than 15% (the scheduler's
    /// timeout threshold — §4.3).
    pub misprediction_rate: f64,
}

/// Result of the full §6.1 comparison.
#[derive(Debug, Clone)]
pub struct PredictionReport {
    /// Scores for every evaluated model, in evaluation order.
    pub scores: Vec<ModelScore>,
}

impl PredictionReport {
    /// Score of the named model.
    ///
    /// # Panics
    ///
    /// Panics if the model was not evaluated.
    #[must_use]
    pub fn score(&self, name: &str) -> &ModelScore {
        self.scores
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("model {name} not evaluated"))
    }
}

/// Scores an online predictor over every test trace: for each trace the
/// predictor is reset, fed sample `t`, and its prediction is compared with
/// sample `t+1`.
fn score_online(
    make: &mut dyn FnMut() -> Box<dyn SpeedPredictor>,
    name: &str,
    test: &[Vec<f64>],
) -> ModelScore {
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for series in test {
        let mut p = make();
        for w in series.windows(2) {
            predicted.push(p.observe_and_predict(w[0]));
            actual.push(w[1]);
        }
    }
    ModelScore {
        name: name.to_string(),
        mape: mape(&actual, &predicted),
        misprediction_rate: misprediction_rate(&actual, &predicted, 0.15),
    }
}

/// Runs the full comparison: LSTM vs three ARIMA orders vs last-value.
///
/// `split` is the train fraction (paper: 0.8). Returns per-model scores in
/// a fixed order: `lstm`, `arima(1,0,0)`, `arima(2,0,0)`, `arima(1,1,1)`,
/// `last-value`.
///
/// # Panics
///
/// Panics if traces are too short to split or train on.
#[must_use]
pub fn compare_models(traces: &TraceSet, split: f64, lstm_config: &LstmConfig) -> PredictionReport {
    let mut train_series: Vec<Vec<f64>> = Vec::with_capacity(traces.len());
    let mut test_series: Vec<Vec<f64>> = Vec::with_capacity(traces.len());
    for t in traces.traces() {
        let (tr, te) = t.split(split);
        train_series.push(tr.samples().to_vec());
        test_series.push(te.samples().to_vec());
    }
    let train_refs: Vec<&[f64]> = train_series.iter().map(Vec::as_slice).collect();

    let lstm: TrainedLstm = train(lstm_config, &train_refs);
    let ar1 = ArimaModel::fit(ArimaOrder::Ar1, &train_refs);
    let ar2 = ArimaModel::fit(ArimaOrder::Ar2, &train_refs);
    let arima111 = ArimaModel::fit(ArimaOrder::Arima111, &train_refs);

    let scores = vec![
        score_online(&mut || Box::new(lstm.online()), "lstm", &test_series),
        score_online(&mut || Box::new(ar1.online()), "arima(1,0,0)", &test_series),
        score_online(&mut || Box::new(ar2.online()), "arima(2,0,0)", &test_series),
        score_online(
            &mut || Box::new(arima111.online()),
            "arima(1,1,1)",
            &test_series,
        ),
        score_online(
            &mut || Box::new(LastValue::default()),
            "last-value",
            &test_series,
        ),
    ];
    PredictionReport { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2c2_trace::CloudTraceConfig;

    fn small_lstm() -> LstmConfig {
        LstmConfig {
            hidden: 4,
            learning_rate: 0.015,
            epochs: 15,
            seq_len: 12,
            batch_size: 16,
            grad_clip: 1.0,
            seed: 11,
            log_space: true,
            huber_delta: 0.1,
        }
    }

    #[test]
    fn report_contains_all_models() {
        let traces = TraceSet::generate(&CloudTraceConfig::calm(), 6, 120, 21);
        let report = compare_models(&traces, 0.8, &small_lstm());
        assert_eq!(report.scores.len(), 5);
        for name in [
            "lstm",
            "arima(1,0,0)",
            "arima(2,0,0)",
            "arima(1,1,1)",
            "last-value",
        ] {
            let s = report.score(name);
            assert!(
                s.mape.is_finite() && s.mape >= 0.0,
                "{name} mape {}",
                s.mape
            );
            assert!((0.0..=1.0).contains(&s.misprediction_rate));
        }
    }

    #[test]
    fn calm_traces_are_predictable() {
        // On the calm preset every reasonable model should land a MAPE
        // far below 100% and a low mis-prediction rate.
        let traces = TraceSet::generate(&CloudTraceConfig::calm(), 8, 150, 5);
        let report = compare_models(&traces, 0.8, &small_lstm());
        for s in &report.scores {
            assert!(
                s.mape < 30.0,
                "{} mape {} too high for calm traces",
                s.name,
                s.mape
            );
        }
        assert!(report.score("lstm").misprediction_rate < 0.30);
    }

    #[test]
    fn learned_models_beat_or_match_naive_on_volatile() {
        let traces = TraceSet::generate(&CloudTraceConfig::volatile(), 8, 200, 13);
        let report = compare_models(&traces, 0.8, &small_lstm());
        let naive = report.score("last-value").mape;
        let lstm = report.score("lstm").mape;
        // The LSTM should not be (much) worse than naive persistence —
        // loose bound: within 20% relative.
        assert!(
            lstm <= naive * 1.2,
            "lstm {lstm} should be competitive with naive {naive}"
        );
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn unknown_model_panics() {
        let traces = TraceSet::generate(&CloudTraceConfig::calm(), 4, 100, 3);
        let report = compare_models(&traces, 0.8, &small_lstm());
        let _ = report.score("transformer");
    }
}
