//! ARIMA baselines: AR(1), AR(2) by ordinary least squares and
//! ARIMA(1,1,1) by Hannan–Rissanen two-stage estimation.
//!
//! §6.1 evaluates exactly these three; ARIMA(1,0,0) — "just the speed from
//! the past iteration" (plus an intercept) — is their best, and the LSTM
//! beats it by ~5 points of MAPE. The fits here are closed-form least
//! squares, which for these small model orders matches what statsmodels
//! would produce up to optimizer noise.

use crate::predictor::{BoxedPredictor, SpeedPredictor};

/// Model order selector for [`ArimaModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArimaOrder {
    /// ARIMA(1,0,0): `x̂_{t+1} = c + φ₁·x_t`.
    Ar1,
    /// ARIMA(2,0,0): `x̂_{t+1} = c + φ₁·x_t + φ₂·x_{t−1}`.
    Ar2,
    /// ARIMA(1,1,1) on first differences with one MA term.
    Arima111,
}

/// A fitted ARIMA model (shared, immutable parameters).
#[derive(Debug, Clone)]
pub struct ArimaModel {
    order: ArimaOrder,
    /// AR coefficients (φ₁[, φ₂]).
    phi: Vec<f64>,
    /// MA coefficient (ARIMA(1,1,1) only).
    theta: f64,
    /// Intercept.
    intercept: f64,
    /// Mean of the training data — the cold-start prediction.
    train_mean: f64,
}

impl ArimaModel {
    /// Fits the model on a collection of training series (one per node).
    ///
    /// Series shorter than the model order contribute nothing; the fit
    /// pools lagged observations across all series, matching how the paper
    /// trains one model over the whole cluster's traces.
    ///
    /// # Panics
    ///
    /// Panics if no usable training pairs exist.
    #[must_use]
    pub fn fit(order: ArimaOrder, series: &[&[f64]]) -> Self {
        let all: Vec<f64> = series.iter().flat_map(|s| s.iter().copied()).collect();
        assert!(!all.is_empty(), "no training data");
        let train_mean = all.iter().sum::<f64>() / all.len() as f64;

        match order {
            ArimaOrder::Ar1 => {
                let (phi, intercept) = fit_ar(series, 1);
                ArimaModel {
                    order,
                    phi,
                    theta: 0.0,
                    intercept,
                    train_mean,
                }
            }
            ArimaOrder::Ar2 => {
                let (phi, intercept) = fit_ar(series, 2);
                ArimaModel {
                    order,
                    phi,
                    theta: 0.0,
                    intercept,
                    train_mean,
                }
            }
            ArimaOrder::Arima111 => {
                let (phi, theta, intercept) = fit_arima111(series);
                ArimaModel {
                    order,
                    phi: vec![phi],
                    theta,
                    intercept,
                    train_mean,
                }
            }
        }
    }

    /// Model order.
    #[must_use]
    pub fn order(&self) -> ArimaOrder {
        self.order
    }

    /// Fitted AR coefficients.
    #[must_use]
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Fitted MA coefficient (0 for pure AR orders).
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Creates a stateful online predictor backed by this model.
    #[must_use]
    pub fn online(&self) -> ArimaPredictor {
        ArimaPredictor {
            model: self.clone(),
            lags: Vec::new(),
            last_err: 0.0,
            last_pred: None,
        }
    }
}

/// Pooled OLS fit of an AR(p) model with intercept.
///
/// Solves the 2×2 / 3×3 normal equations directly.
fn fit_ar(series: &[&[f64]], p: usize) -> (Vec<f64>, f64) {
    // Design: rows [1, x_{t-1}, ..., x_{t-p}] -> target x_t.
    let dim = p + 1;
    let mut xtx = vec![vec![0.0; dim]; dim];
    let mut xty = vec![0.0; dim];
    let mut count = 0usize;
    for s in series {
        if s.len() <= p {
            continue;
        }
        for t in p..s.len() {
            let mut row = Vec::with_capacity(dim);
            row.push(1.0);
            for lag in 1..=p {
                row.push(s[t - lag]);
            }
            for i in 0..dim {
                for j in 0..dim {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * s[t];
            }
            count += 1;
        }
    }
    assert!(count > dim, "not enough training pairs for AR({p})");
    let sol = solve_small(&mut xtx, &mut xty);
    let intercept = sol[0];
    let phi = sol[1..].to_vec();
    (phi, intercept)
}

/// Hannan–Rissanen estimation of ARIMA(1,1,1).
///
/// Stage 1: long-AR fit on the differenced series yields residual
/// estimates. Stage 2: OLS of `d_t` on `[1, d_{t−1}, e_{t−1}]`.
fn fit_arima111(series: &[&[f64]]) -> (f64, f64, f64) {
    // Differenced series per node.
    let diffs: Vec<Vec<f64>> = series
        .iter()
        .filter(|s| s.len() >= 3)
        .map(|s| s.windows(2).map(|w| w[1] - w[0]).collect())
        .collect();
    assert!(
        !diffs.is_empty(),
        "not enough training data for ARIMA(1,1,1)"
    );

    // Stage 1: AR(3) on differences to estimate innovations.
    let diff_refs: Vec<&[f64]> = diffs.iter().map(Vec::as_slice).collect();
    let p_long = 3;
    let (phi_long, c_long) = fit_ar(&diff_refs, p_long);
    let mut residuals: Vec<Vec<f64>> = Vec::with_capacity(diffs.len());
    for d in &diffs {
        let mut r = vec![0.0; d.len()];
        for t in p_long..d.len() {
            let mut pred = c_long;
            for (lag, ph) in phi_long.iter().enumerate() {
                pred += ph * d[t - lag - 1];
            }
            r[t] = d[t] - pred;
        }
        residuals.push(r);
    }

    // Stage 2: d_t = c + phi*d_{t-1} + theta*e_{t-1}.
    let mut xtx = vec![vec![0.0; 3]; 3];
    let mut xty = vec![0.0; 3];
    let mut count = 0usize;
    for (d, e) in diffs.iter().zip(residuals.iter()) {
        for t in p_long + 1..d.len() {
            let row = [1.0, d[t - 1], e[t - 1]];
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * d[t];
            }
            count += 1;
        }
    }
    assert!(count > 3, "not enough training pairs for ARIMA(1,1,1)");
    let sol = solve_small(&mut xtx, &mut xty);
    (sol[1], sol[2], sol[0])
}

/// Tiny Gaussian-elimination solve for the ≤4×4 normal equations, with a
/// ridge fallback for degenerate designs (e.g. constant training series).
fn solve_small(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    // Ridge: the normal matrix is PSD, a tiny diagonal bump guarantees
    // invertibility without visibly biasing healthy fits.
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        let (top, below) = a.split_at_mut(col + 1);
        let pivot_row = &top[col];
        for (off_r, row) in below.iter_mut().enumerate() {
            let f = row[col] / d;
            for (rv, &pv) in row.iter_mut().zip(pivot_row.iter()).skip(col) {
                *rv -= f * pv;
            }
            b[col + 1 + off_r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in i + 1..n {
            s -= a[i][j] * x[j];
        }
        x[i] = s / a[i][i];
    }
    x
}

/// Stateful online ARIMA forecaster for one worker.
#[derive(Debug, Clone)]
pub struct ArimaPredictor {
    model: ArimaModel,
    /// Most recent observations, newest last (holds ≤ 2).
    lags: Vec<f64>,
    /// Last innovation estimate (ARIMA(1,1,1)).
    last_err: f64,
    /// The prediction issued last call (to compute the innovation).
    last_pred: Option<f64>,
}

impl SpeedPredictor for ArimaPredictor {
    fn observe_and_predict(&mut self, observed: f64) -> f64 {
        // Update innovation from the previous prediction.
        if let Some(p) = self.last_pred {
            self.last_err = observed - p;
        }
        self.lags.push(observed);
        if self.lags.len() > 2 {
            self.lags.remove(0);
        }
        let m = &self.model;
        let pred = match m.order {
            ArimaOrder::Ar1 => m.intercept + m.phi[0] * observed,
            ArimaOrder::Ar2 => {
                if self.lags.len() < 2 {
                    m.intercept + (m.phi[0] + m.phi[1]) * observed
                } else {
                    m.intercept + m.phi[0] * self.lags[1] + m.phi[1] * self.lags[0]
                }
            }
            ArimaOrder::Arima111 => {
                let d = if self.lags.len() < 2 {
                    0.0
                } else {
                    self.lags[1] - self.lags[0]
                };
                observed + m.intercept + m.phi[0] * d + m.theta * self.last_err
            }
        };
        // Speeds are positive; clamp pathological extrapolations.
        let pred = pred.max(1e-6);
        self.last_pred = Some(pred);
        pred
    }

    fn predict_cold(&self) -> f64 {
        self.last_pred.unwrap_or(self.model.train_mean)
    }

    fn clone_box(&self) -> BoxedPredictor {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.lags.clear();
        self.last_err = 0.0;
        self.last_pred = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generate a synthetic AR(1) process x_t = c + phi x_{t-1} + noise.
    fn ar1_series(c: f64, phi: f64, n: usize, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = c / (1.0 - phi);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x = c + phi * x + rng.gen_range(-noise..noise);
            out.push(x);
        }
        out
    }

    #[test]
    fn ar1_recovers_true_coefficients() {
        let s = ar1_series(0.3, 0.7, 5000, 0.02, 1);
        let model = ArimaModel::fit(ArimaOrder::Ar1, &[&s]);
        assert!(
            (model.phi()[0] - 0.7).abs() < 0.05,
            "phi = {}",
            model.phi()[0]
        );
        assert!(
            (model.intercept - 0.3).abs() < 0.06,
            "c = {}",
            model.intercept
        );
    }

    #[test]
    fn ar2_recovers_true_coefficients() {
        // x_t = 0.1 + 0.5 x_{t-1} + 0.3 x_{t-2} + eps.
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs = vec![0.5, 0.5];
        for _ in 0..8000 {
            let t = xs.len();
            let v = 0.1 + 0.5 * xs[t - 1] + 0.3 * xs[t - 2] + rng.gen_range(-0.02..0.02);
            xs.push(v);
        }
        let model = ArimaModel::fit(ArimaOrder::Ar2, &[&xs]);
        assert!(
            (model.phi()[0] - 0.5).abs() < 0.08,
            "phi1 = {}",
            model.phi()[0]
        );
        assert!(
            (model.phi()[1] - 0.3).abs() < 0.08,
            "phi2 = {}",
            model.phi()[1]
        );
    }

    #[test]
    fn pooled_fit_uses_all_series() {
        let a = ar1_series(0.2, 0.6, 500, 0.02, 3);
        let b = ar1_series(0.2, 0.6, 500, 0.02, 4);
        let model = ArimaModel::fit(ArimaOrder::Ar1, &[&a, &b]);
        assert!((model.phi()[0] - 0.6).abs() < 0.08);
    }

    #[test]
    fn online_ar1_predictions_track_process() {
        let s = ar1_series(0.3, 0.7, 2000, 0.01, 5);
        let (train, test) = s.split_at(1600);
        let model = ArimaModel::fit(ArimaOrder::Ar1, &[train]);
        let mut online = model.online();
        // One-step-ahead predictions should be closer than the naive mean.
        let mut err_model = 0.0;
        let mut err_mean = 0.0;
        let mean = train.iter().sum::<f64>() / train.len() as f64;
        for w in test.windows(2) {
            let pred = online.observe_and_predict(w[0]);
            err_model += (pred - w[1]).abs();
            err_mean += (mean - w[1]).abs();
        }
        assert!(
            err_model < err_mean,
            "AR(1) should beat the mean forecaster"
        );
    }

    #[test]
    fn arima111_fits_and_predicts_finite() {
        // Trend + noise: differencing handles the trend.
        let mut rng = StdRng::seed_from_u64(6);
        let s: Vec<f64> = (0..3000)
            .map(|i| 1.0 + 0.0001 * i as f64 + rng.gen_range(-0.01..0.01))
            .collect();
        let model = ArimaModel::fit(ArimaOrder::Arima111, &[&s]);
        let mut online = model.online();
        for w in s.windows(1).take(50) {
            let p = online.observe_and_predict(w[0]);
            assert!(p.is_finite() && p > 0.0);
        }
    }

    #[test]
    fn constant_series_degenerate_fit_is_safe() {
        let s = vec![0.5; 100];
        let model = ArimaModel::fit(ArimaOrder::Ar1, &[&s]);
        let mut online = model.online();
        let p = online.observe_and_predict(0.5);
        assert!(p.is_finite());
        assert!(
            (p - 0.5).abs() < 0.05,
            "constant series should predict ~0.5, got {p}"
        );
    }

    #[test]
    fn cold_start_uses_train_mean() {
        let s = ar1_series(0.3, 0.5, 200, 0.01, 7);
        let model = ArimaModel::fit(ArimaOrder::Ar1, &[&s]);
        let online = model.online();
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((online.predict_cold() - mean).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_online_state() {
        let s = ar1_series(0.3, 0.5, 200, 0.01, 8);
        let model = ArimaModel::fit(ArimaOrder::Ar1, &[&s]);
        let mut online = model.online();
        let cold = online.predict_cold();
        let _ = online.observe_and_predict(0.9);
        assert_ne!(online.predict_cold(), cold);
        online.reset();
        assert_eq!(online.predict_cold(), cold);
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn empty_fit_panics() {
        let _ = ArimaModel::fit(ArimaOrder::Ar1, &[]);
    }
}
