//! Trains the paper's LSTM speed forecaster (1 input → 4 hidden → 1
//! output) from scratch on generated cloud traces and compares it against
//! the ARIMA baselines — the §6.1 experiment.
//!
//! ```text
//! cargo run --release --example speed_prediction
//! ```

use s2c2_predict::eval::compare_models;
use s2c2_predict::lstm::LstmConfig;
use s2c2_trace::{CloudTraceConfig, TraceSet};

fn main() {
    // 100 nodes x 300 iterations of cloud-like speed traces, mimicking
    // the paper's DigitalOcean measurement campaign.
    let traces = TraceSet::generate(&CloudTraceConfig::paper(), 100, 300, 1);
    println!(
        "generated {} traces of {} samples each",
        traces.len(),
        traces.node(0).len()
    );
    println!("training on 80%, scoring one-step-ahead MAPE on the held-out 20%...\n");

    let report = compare_models(&traces, 0.8, &LstmConfig::default());
    println!(
        "{:<14} {:>12} {:>22}",
        "model", "test MAPE %", ">15% mispred rate %"
    );
    for s in &report.scores {
        println!(
            "{:<14} {:>12.2} {:>22.2}",
            s.name,
            s.mape,
            100.0 * s.misprediction_rate
        );
    }

    println!(
        "\npaper reference: LSTM 16.7% MAPE, beating ARIMA(1,0,0) by ~5 points.\n\
         The >15% mis-prediction rate is what drives the scheduler's §4.3\n\
         timeout machinery (margin 0.15)."
    );
}
