//! Serving with the telemetry layer on: structured trace spans, the
//! metrics registry, phase profiling, and exportable timelines.
//!
//! The same small recurring-matrix trace from `serve_threaded` is served
//! with `ServeConfig::telemetry` enabled, showing that (a) the trace is
//! virtual-clock data — byte-identical across execution backends and
//! across repeat runs, (b) tracing is observability-only — disabling it
//! reproduces the untraced run bit for bit, and (c) per-iteration time
//! decomposes exactly into dispatch/compute/collect/decode phases. The
//! JSONL event log and Chrome trace-event timeline land in a temp dir.
//!
//! Sizes are deliberately small (8 workers, 12 jobs): this example runs
//! in CI on every push.
//!
//! ```text
//! cargo run --release --example serve_traced
//! ```

use s2c2::prelude::*;
use s2c2::telemetry::export;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::{BackendKind, JobSpec, Telemetry};

fn pool(n: usize) -> ClusterSpec {
    ClusterSpec::builder(n)
        .compute_bound()
        .seed(0x7EED)
        .straggler_slowdown(5.0)
        .stragglers(&[2], 0.2)
        .build()
}

fn run(workload: &[(f64, JobSpec)], n: usize, backend: BackendKind, traced: bool) -> ServiceReport {
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.backend = backend;
    cfg.telemetry = traced;
    ServiceEngine::new(pool(n), cfg)
        .expect("valid configuration")
        .run(workload)
        .expect("service run completes")
}

fn telemetry(report: &ServiceReport) -> &Telemetry {
    report.telemetry.as_ref().expect("telemetry was enabled")
}

fn main() {
    let n = 8;
    let jobs = 12;
    let instants: Vec<f64> = (0..jobs).map(|i| 0.4 * i as f64).collect();
    let workload: Vec<(f64, JobSpec)> = generate_workload(
        &ArrivalPattern::Trace(instants),
        &JobPreset::standard_mix(),
        jobs,
        3,
        n,
        0xE2E,
    );

    println!("serving {jobs} jobs over a {n}-worker pool with telemetry on...\n");
    let traced = run(&workload, n, BackendKind::Sim, true);
    assert_eq!(traced.completed(), jobs);
    let tel = telemetry(&traced);

    // -- trace spans + rung ladder ---------------------------------------
    println!("trace: {} events recorded", tel.trace.len());
    let rung_names = [
        "1 normal start",
        "2 degraded start",
        "3 redo on finished",
        "4 wait out",
        "5 abandon/restart",
    ];
    for (name, count) in rung_names.iter().zip(traced.recovery_rung_counts) {
        println!("  rung {name:<18} {count:>4}");
    }
    assert_eq!(
        traced.recovery_rung_counts,
        tel.trace.rung_counts(),
        "report counters and the event log tell one story"
    );

    // -- phase profile ----------------------------------------------------
    println!("\nvirtual phase profile (seconds of iteration time):");
    for (name, secs) in traced.phase_virtual.named() {
        if secs > 0.0 {
            println!("  {name:<10} {secs:>8.3}");
        }
    }
    let sum = traced.phase_virtual.total();
    assert!(
        (sum - traced.iteration_time_total).abs() <= 0.01 * traced.iteration_time_total,
        "phases must sum to iteration time"
    );
    println!("  {:<10} {:>8.3}", "total", traced.iteration_time_total);

    // -- metrics registry -------------------------------------------------
    let spans = tel
        .metrics
        .histogram("iteration_span")
        .expect("iteration spans are observed");
    println!(
        "\nmetrics: {} iteration spans, p50 {:.3}s, p99 {:.3}s; counters:",
        spans.count(),
        spans.percentile(50.0),
        spans.percentile(99.0),
    );
    for (name, value) in tel.metrics.counters() {
        println!("  {name:<20} {value:>6}");
    }

    // -- exporters --------------------------------------------------------
    let events = tel.trace.events();
    let jsonl = export::jsonl(events);
    let chrome = export::chrome_trace(events);
    export::validate_json(&chrome).expect("chrome trace is valid JSON");
    let dir = std::env::temp_dir().join("s2c2_serve_traced");
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("trace_events.jsonl"), &jsonl).expect("write jsonl");
    std::fs::write(dir.join("trace_chrome.json"), &chrome).expect("write chrome trace");
    println!(
        "\nexported {} JSONL lines and a Chrome timeline to {}",
        jsonl.lines().count(),
        dir.display()
    );

    // -- determinism + zero cost ------------------------------------------
    let again = run(&workload, n, BackendKind::Sim, true);
    assert_eq!(
        jsonl,
        export::jsonl(telemetry(&again).trace.events()),
        "same seed must export byte-identical JSONL"
    );
    let threaded = run(&workload, n, BackendKind::Threaded, true);
    assert_eq!(
        &tel.trace,
        &telemetry(&threaded).trace,
        "real threads must replay the identical virtual event stream"
    );
    let plain = run(&workload, n, BackendKind::Sim, false);
    assert!(plain.telemetry.is_none());
    assert_eq!(plain.makespan.to_bits(), traced.makespan.to_bits());
    assert_eq!(plain.latencies(), traced.latencies());
    println!(
        "\nsame schedule observed three ways: repeat runs and real threads replay the\n\
         identical event stream, and switching tracing off reproduces the untraced\n\
         run bit for bit."
    );
}
