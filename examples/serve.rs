//! Quickstart for the multi-job service engine: a shared 16-worker pool
//! serving a Poisson stream of heterogeneous coded jobs, comparing
//! shared-cluster S²C² scheduling against conventional MDS and uncoded —
//! then the QoS layer: tenant-weighted capacity shares and
//! deadline-aware admission.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use s2c2::prelude::*;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::JobSpec;

fn main() {
    let n = 16;
    // A pool with three hidden 5x stragglers and ±20% heterogeneity.
    let pool = || {
        ClusterSpec::builder(n)
            .compute_bound()
            .seed(0x5EED)
            .straggler_slowdown(5.0)
            .stragglers(&[2, 7, 11], 0.2)
            .build()
    };

    // 50 jobs arriving at ~1.2 jobs/s from the standard small/medium/large
    // mix, shared across 4 tenants.
    let workload = generate_workload(
        &ArrivalPattern::Poisson { rate: 1.2 },
        &JobPreset::standard_mix(),
        50,
        4,
        n,
        42,
    );
    println!(
        "serving {} jobs over a {n}-worker pool (3 hidden stragglers)...\n",
        workload.len()
    );
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>11} {:>12} {:>9}",
        "policy", "p50 (s)", "p95 (s)", "p99 (s)", "jobs/s", "utilization", "timeouts"
    );

    for (name, mode) in [
        ("uncoded", SchedulerMode::Uncoded),
        ("mds", SchedulerMode::ConventionalMds),
        (
            "s2c2",
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
        ),
    ] {
        let cfg = ServeConfig::new(mode);
        let report = ServiceEngine::new(pool(), cfg)
            .expect("valid configuration")
            .run(&workload)
            .expect("service run completes");
        assert_eq!(report.completed(), workload.len());
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3} {:>11.3} {:>12.3} {:>9}",
            name,
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            report.throughput(),
            report.utilization(),
            report.timeouts,
        );
    }

    println!(
        "\nshared-cluster S²C² squeezes the same (n,k) slack across every \
         resident job:\nless tail latency at the same offered load, no data \
         movement, no re-encoding."
    );

    // --- QoS: tenant-weighted shares -----------------------------------
    // Two tenants submit identical saturating streams; tenant 1's jobs
    // carry capacity weight 2. The weighted fair-share admission keeps
    // one job of each resident, and the weighted capacity split gives
    // the heavy tenant twice the fractional rate on every worker.
    let mut arrivals: Vec<(f64, JobSpec)> = Vec::new();
    for i in 0..32u64 {
        let tenant = (i % 2) as u32;
        let weight = if tenant == 1 { 2.0 } else { 1.0 };
        arrivals.push((
            0.01 * i as f64,
            JobPreset::medium()
                .with_weight(weight)
                .instantiate(i, tenant, n),
        ));
    }
    let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
        predictor: PredictorSource::LastValue,
    });
    cfg.policy = QueuePolicy::WeightedFairShare;
    cfg.max_resident = 2;
    let report = ServiceEngine::new(pool(), cfg)
        .expect("valid configuration")
        .run(&arrivals)
        .expect("service run completes");
    println!("\nweighted tenants (identical streams, tenant 1 at weight 2):");
    println!(
        "{:<10} {:>7} {:>15} {:>15} {:>9} {:>9}",
        "tenant", "weight", "entitled_share", "achieved_share", "p50 (s)", "p99 (s)"
    );
    for t in report.tenant_summaries() {
        let weight = report
            .jobs
            .iter()
            .find(|j| j.tenant == t.tenant)
            .map_or(1.0, |j| j.weight);
        println!(
            "{:<10} {:>7.1} {:>15.3} {:>15.3} {:>9.3} {:>9.3}",
            format!("tenant{}", t.tenant),
            weight,
            t.entitled_share,
            t.achieved_share,
            t.p50_latency,
            t.p99_latency,
        );
    }
    assert!(report.utilization() <= 1.0);

    // --- QoS: deadline-aware admission ---------------------------------
    // The same overloaded SLO-carrying stream under FIFO vs
    // earliest-deadline admission (plus infeasibility rejection): EDF
    // spends the queueing slack where deadlines are loose.
    let mix = vec![
        (JobPreset::small().with_deadline(1.5), 5.0),
        (JobPreset::medium().with_deadline(5.0), 3.0),
        (JobPreset::large().with_deadline(20.0), 1.0),
    ];
    let slo_load = generate_workload(&ArrivalPattern::Poisson { rate: 4.0 }, &mix, 40, 4, n, 7);
    println!("\ndeadline admission (same 40-job SLO stream, Poisson 4/s):");
    println!(
        "{:<12} {:>13} {:>9} {:>9} {:>9}",
        "policy", "on_time_ratio", "p99 (s)", "served", "rejected"
    );
    for (name, policy, reject) in [
        ("fifo", QueuePolicy::Fifo, false),
        ("edf", QueuePolicy::EarliestDeadline, false),
        ("edf+reject", QueuePolicy::EarliestDeadline, true),
    ] {
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.policy = policy;
        cfg.reject_infeasible_deadlines = reject;
        let report = ServiceEngine::new(pool(), cfg)
            .expect("valid configuration")
            .run(&slo_load)
            .expect("service run completes");
        println!(
            "{:<12} {:>13.3} {:>9.3} {:>9} {:>9}",
            name,
            report.on_time_ratio(),
            report.latency_percentile(99.0),
            report.completed(),
            report.rejected(),
        );
    }

    println!(
        "\nweights buy proportional throughput, deadline admission buys \
         on-time ratio —\nsame pool, same coded slack, no duplicate work."
    );
}
