//! Quickstart for the multi-job service engine: a shared 16-worker pool
//! serving a Poisson stream of heterogeneous coded jobs, comparing
//! shared-cluster S²C² scheduling against conventional MDS and uncoded.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use s2c2::prelude::*;
use s2c2_core::speed_tracker::PredictorSource;

fn main() {
    let n = 16;
    // A pool with three hidden 5x stragglers and ±20% heterogeneity.
    let pool = || {
        ClusterSpec::builder(n)
            .compute_bound()
            .seed(0x5EED)
            .straggler_slowdown(5.0)
            .stragglers(&[2, 7, 11], 0.2)
            .build()
    };

    // 50 jobs arriving at ~1.2 jobs/s from the standard small/medium/large
    // mix, shared across 4 tenants.
    let workload = generate_workload(
        &ArrivalPattern::Poisson { rate: 1.2 },
        &JobPreset::standard_mix(),
        50,
        4,
        n,
        42,
    );
    println!(
        "serving {} jobs over a {n}-worker pool (3 hidden stragglers)...\n",
        workload.len()
    );
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>11} {:>12} {:>9}",
        "policy", "p50 (s)", "p95 (s)", "p99 (s)", "jobs/s", "utilization", "timeouts"
    );

    for (name, mode) in [
        ("uncoded", SchedulerMode::Uncoded),
        ("mds", SchedulerMode::ConventionalMds),
        (
            "s2c2",
            SchedulerMode::SharedS2c2 {
                predictor: PredictorSource::LastValue,
            },
        ),
    ] {
        let cfg = ServeConfig::new(mode);
        let report = ServiceEngine::new(pool(), cfg)
            .expect("valid configuration")
            .run(&workload)
            .expect("service run completes");
        assert_eq!(report.completed(), workload.len());
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>9.3} {:>11.3} {:>12.3} {:>9}",
            name,
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            report.throughput(),
            report.utilization(),
            report.timeouts,
        );
    }

    println!(
        "\nshared-cluster S²C² squeezes the same (n,k) slack across every \
         resident job:\nless tail latency at the same offered load, no data \
         movement, no re-encoding."
    );
}
