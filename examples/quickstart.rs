//! Quickstart: encode a matrix once, run adaptive coded matvec iterations
//! on a cluster with stragglers, and watch S²C² squeeze the slack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use s2c2::prelude::*;
use s2c2_core::speed_tracker::PredictorSource;

fn main() {
    // The data: a 2400 x 160 matrix we will repeatedly multiply against
    // new vectors (the inner loop of gradient descent, PageRank, ...).
    let a = Matrix::from_fn(2400, 160, |r, c| ((r * 31 + c * 17) % 23) as f64 / 23.0);
    let x = Vector::from_fn(160, |i| 1.0 + (i as f64 * 0.1).sin());
    let reference = a.matvec(&x);

    // A 12-worker cluster where workers 3 and 7 are 5x-slow stragglers
    // and everyone jitters up to 20% iteration to iteration.
    let cluster = ClusterSpec::builder(12)
        .compute_bound()
        .straggler_slowdown(5.0)
        .stragglers(&[3, 7], 0.2)
        .build();

    // Conservative (12,6) MDS encoding: tolerates up to 6 stragglers.
    // S2C2 scheduling means we only *pay* for the stragglers we have.
    let mut job = CodedJobBuilder::new(a, MdsParams::new(12, 6))
        .chunks_per_worker(12)
        .strategy(StrategyKind::S2c2General)
        .predictor(PredictorSource::LastValue)
        .build(cluster)
        .expect("valid configuration");

    println!("running 10 coded iterations on 12 workers (2 hidden stragglers)...\n");
    for iter in 0..10 {
        let out = job.run_iteration(&x).expect("iteration succeeds");
        // Verify the decode against the local reference.
        let max_err = out
            .result
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        println!(
            "iter {iter}: simulated latency {:.4}s, wasted rows {:>4}, max decode error {max_err:.2e}",
            out.metrics.latency,
            out.metrics.total_wasted_rows(),
        );
    }

    let m = job.metrics();
    println!(
        "\ntotal simulated latency: {:.4}s over {} iterations",
        m.total_latency(),
        m.len()
    );
    println!(
        "per-worker wasted-computation fractions: {:?}",
        m.wasted_fraction_per_worker()
            .iter()
            .map(|f| format!("{:.0}%", 100.0 * f))
            .collect::<Vec<_>>()
    );
    println!(
        "\nNote how iteration 0 (blind predictions) pays a reassignment,\n\
         after which the scheduler routes around the stragglers for free —\n\
         the coded partitions never move."
    );
}
