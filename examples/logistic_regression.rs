//! Trains logistic regression by distributed gradient descent and
//! compares three straggler-mitigation strategies on the same cluster —
//! the Figure 6 story in miniature.
//!
//! ```text
//! cargo run --release --example logistic_regression
//! ```

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::exec::ExecConfig;
use s2c2_workloads::logreg::DistributedLogReg;

fn main() {
    let data = gisette_like(2400, 200, 42);
    println!(
        "dataset: {} examples x {} features (gisette-like synthetic)\n",
        data.features.rows(),
        data.features.cols()
    );

    for (name, kind, predictor) in [
        (
            "conventional mds(12,6) ",
            StrategyKind::MdsCoded,
            PredictorSource::LastValue,
        ),
        (
            "basic s2c2(12,6)       ",
            StrategyKind::S2c2Basic,
            PredictorSource::LastValue,
        ),
        (
            "general s2c2(12,6)     ",
            StrategyKind::S2c2General,
            PredictorSource::LastValue,
        ),
    ] {
        // 12 workers, 2 stragglers (5x slow), 20% jitter.
        let cluster = ClusterSpec::builder(12)
            .compute_bound()
            .straggler_slowdown(5.0)
            .stragglers(&[2, 9], 0.2)
            .build();
        let cfg = ExecConfig::new(MdsParams::new(12, 6), cluster)
            .strategy(kind)
            .predictor(predictor)
            .chunks_per_worker(12);
        let mut lr = DistributedLogReg::new(&data, &cfg, 0.5, 1e-4).expect("valid configuration");

        let mut last = None;
        for _ in 0..15 {
            last = Some(lr.step().expect("step succeeds"));
        }
        let report = last.expect("ran 15 steps");
        println!(
            "{name} | total latency {:.4}s | final loss {:.4} | accuracy {:.1}%",
            lr.total_latency(),
            report.loss,
            100.0 * report.accuracy
        );
    }

    println!(
        "\nAll three strategies compute numerically identical gradients —\n\
         coded computing is exact, not approximate. The difference is purely\n\
         how much of the cluster's time each scheduler wastes."
    );
}
