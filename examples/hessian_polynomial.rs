//! S²C² beyond matrix–vector: polynomial-coded Hessian computation
//! `Aᵀ·diag(w)·A` — the §5/Figure 12 extension.
//!
//! ```text
//! cargo run --release --example hessian_polynomial
//! ```

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_linalg::Vector;
use s2c2_trace::CloudTraceConfig;
use s2c2_workloads::datasets::gisette_like;
use s2c2_workloads::exec::ExecConfig;
use s2c2_workloads::hessian::{DistributedHessian, PolyStrategyKind};

fn main() {
    // A 360 x 360 feature matrix (the paper uses 6000 x 6000 on its
    // testbed; the shape of the comparison is scale-free).
    let data = gisette_like(360, 360, 3);
    let x = Vector::zeros(360);

    let mut latencies = Vec::new();
    for (name, kind) in [
        (
            "conventional polynomial codes",
            PolyStrategyKind::Conventional,
        ),
        ("polynomial codes with s2c2   ", PolyStrategyKind::S2c2),
    ] {
        // 12 cloud workers; any 9 responses decode (3x3 grid).
        let cluster = ClusterSpec::builder(12)
            .compute_bound()
            .seed(11)
            .cloud(&CloudTraceConfig::calm())
            .build();
        let cfg = ExecConfig::new(MdsParams::new(12, 9), cluster)
            .strategy(StrategyKind::S2c2General)
            .predictor(PredictorSource::LastValue)
            .chunks_per_worker(12);
        let mut hess =
            DistributedHessian::new(&data.features, &cfg, 3, kind).expect("valid configuration");

        // Newton-style loop: weights from the logistic model at x.
        let w = hess.logistic_weights(&x);
        let mut total = 0.0;
        let mut shape = (0, 0);
        for _ in 0..10 {
            let out = hess.compute(&w).expect("round succeeds");
            total += out.latency;
            shape = out.hessian.shape();
        }
        println!(
            "{name} | hessian {}x{} | total latency {total:.4}s",
            shape.0, shape.1
        );
        latencies.push(total);
    }

    let gain = 100.0 * (latencies[0] - latencies[1]) / latencies[0];
    println!(
        "\nS2C2 scheduling reduces polynomial-coded Hessian time by {gain:.1}% here.\n\
         The paper reports 19% (low mis-prediction): gains are capped below the\n\
         ideal (12-9)/9 = 33% because every node must scale its full encoded\n\
         partition by diag(w) regardless of how few chunks it multiplies."
    );
}
