//! End-to-end serving on the real-threads backend: the same event-driven
//! schedule the simulator decides, executed by actual OS-thread workers.
//!
//! A small recurring-matrix trace is served three times — timing-only,
//! master-side verified numerics, and real threads — showing that (a)
//! virtual latencies are backend-independent, (b) every decoded
//! iteration matches the sequential `A·x` reference, and (c) the encode
//! cache amortizes recurring models so repeat jobs skip re-encoding.
//!
//! Sizes are deliberately small (8 workers, 12 jobs): this example runs
//! in CI on every push.
//!
//! ```text
//! cargo run --release --example serve_threaded
//! ```

use s2c2::prelude::*;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_serve::{BackendKind, JobSpec};

fn main() {
    let n = 8;
    let jobs = 12;
    let pool = || {
        ClusterSpec::builder(n)
            .compute_bound()
            .seed(0x7EED)
            .straggler_slowdown(5.0)
            .stragglers(&[2], 0.2)
            .build()
    };

    // A trace workload: presets cycle, and every job drawn from one
    // preset re-submits the same model matrix — the recurring regime
    // the encode cache amortizes.
    let instants: Vec<f64> = (0..jobs).map(|i| 0.4 * i as f64).collect();
    let workload: Vec<(f64, JobSpec)> = generate_workload(
        &ArrivalPattern::Trace(instants),
        &JobPreset::standard_mix(),
        jobs,
        3,
        n,
        0xE2E,
    );
    println!("serving {jobs} jobs over a {n}-worker pool, once per execution backend...\n");
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>11} {:>11} {:>14}",
        "backend", "p50 (s)", "p99 (s)", "verified", "cache_hits", "cache_miss", "max_decode_err"
    );

    let mut outputs: Vec<Vec<(u64, Vec<f64>)>> = Vec::new();
    for backend in [
        BackendKind::Sim,
        BackendKind::SimVerified,
        BackendKind::Threaded,
    ] {
        let mut cfg = ServeConfig::new(SchedulerMode::SharedS2c2 {
            predictor: PredictorSource::LastValue,
        });
        cfg.backend = backend;
        let report = ServiceEngine::new(pool(), cfg)
            .expect("valid configuration")
            .run(&workload)
            .expect("service run completes and verifies");
        assert_eq!(report.completed(), jobs);
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>10} {:>11} {:>11} {:>14.2e}",
            backend.to_string(),
            report.latency_percentile(50.0),
            report.latency_percentile(99.0),
            report.verified_iterations,
            report.encode_cache_hits,
            report.encode_cache_misses,
            report.max_decode_error,
        );
        if backend == BackendKind::Threaded {
            assert!(
                report.encode_cache_hit_rate() > 0.0,
                "recurring matrices must hit the encode cache"
            );
            assert!(report.verified_iterations > 0);
        }
        outputs.push(report.job_outputs);
    }

    // The two numeric backends decoded from identical worker coverage:
    // their outputs agree to FP reproducibility.
    let (verified, threaded) = (&outputs[1], &outputs[2]);
    assert_eq!(verified.len(), threaded.len());
    for ((ia, a), (ib, b)) in verified.iter().zip(threaded.iter()) {
        assert_eq!(ia, ib);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    println!(
        "\nsame schedule, three executors: the timing model's coverage decodes \
         to the sequential\nreference on real OS threads, and recurring models \
         encode once, not once per job."
    );
}
