//! PageRank over a power-law web graph with coded power iteration —
//! the Figure 7 workload.
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use s2c2_cluster::ClusterSpec;
use s2c2_coding::mds::MdsParams;
use s2c2_core::speed_tracker::PredictorSource;
use s2c2_core::strategy::StrategyKind;
use s2c2_workloads::datasets::power_law_graph;
use s2c2_workloads::exec::ExecConfig;
use s2c2_workloads::pagerank::DistributedPageRank;

fn main() {
    let graph = power_law_graph(2000, 3, 7);
    println!(
        "graph: {} nodes, {} edges (preferential attachment)\n",
        graph.nodes(),
        graph.edge_count()
    );

    let cluster = ClusterSpec::builder(12)
        .compute_bound()
        .straggler_slowdown(5.0)
        .stragglers(&[5], 0.2)
        .build();
    let cfg = ExecConfig::new(MdsParams::new(12, 6), cluster)
        .strategy(StrategyKind::S2c2General)
        .predictor(PredictorSource::LastValue)
        .chunks_per_worker(12);

    let mut pr = DistributedPageRank::new(&graph, &cfg, 0.85).expect("valid configuration");
    let iters = pr.run_to_convergence(1e-10, 100).expect("converges");
    println!("converged in {iters} power iterations");
    println!("total simulated latency: {:.4}s", pr.total_latency());

    // Show the top-5 ranked nodes alongside their in-degrees.
    let mut indeg = vec![0usize; graph.nodes()];
    for outs in &graph.edges {
        for &v in outs {
            indeg[v] += 1;
        }
    }
    let mut ranked: Vec<usize> = (0..graph.nodes()).collect();
    ranked.sort_by(|&a, &b| pr.rank()[b].total_cmp(&pr.rank()[a]));
    println!("\ntop 5 nodes by PageRank:");
    for &node in ranked.iter().take(5) {
        println!(
            "  node {node:>4}  rank {:.5}  in-degree {}",
            pr.rank()[node],
            indeg[node]
        );
    }
    println!("\nrank mass sums to {:.6} (should be ~1)", pr.rank().sum());
}
